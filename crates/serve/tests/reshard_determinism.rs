//! The resharding determinism oracle, end to end.
//!
//! * The **acceptance test**: a 4-shard engine resharding mid-stream under a
//!   load-adaptive policy, run at serial / 2 / auto thread counts through
//!   the channel-based ingestion layer, matches the epoch-segmented
//!   [`ShardedScenario::epoch_replay`] serial reference byte for byte:
//!   per-epoch per-shard fingerprints at every epoch boundary, per-epoch
//!   cost sub-summaries, migration costs, and the merged ledger.
//! * The **property test**: every router policy × every online algorithm ×
//!   random reshard cadences / drain cadences / thread counts — the
//!   resharded engine reproduces the epoch-segmented replay exactly.
//! * The **frame test**: explicit `Reshard` ingest frames interleaved with
//!   bursts are equivalent to the same manual schedule replayed offline.

use proptest::prelude::*;
use satn_core::AlgorithmKind;
use satn_serve::{
    ingest_channel, EngineReport, HandoverMode, Parallelism, ReshardPlan, ReshardPolicy,
    ReshardSchedule, ShardedEngineConfig,
};
use satn_sim::{ReshardEvent, ShardRouter, ShardedScenario, SimRunner, WorkloadSpec};
use satn_tree::ElementId;

/// Runs `scenario` through the engine (optionally via the ingest queue) and
/// asserts byte-identity against the epoch-segmented serial replay at every
/// epoch boundary. Returns the engine report for cross-run comparisons.
fn assert_matches_epoch_replay(
    scenario: &ShardedScenario,
    parallelism: Parallelism,
    drain_threshold: usize,
    via_queue: bool,
) -> EngineReport {
    let mut engine = ShardedEngineConfig::from_scenario(scenario)
        .parallelism(parallelism)
        .drain_threshold(drain_threshold)
        .build()
        .unwrap();
    if via_queue {
        let (sender, queue) = ingest_channel(4);
        let requests: Vec<ElementId> = scenario.stream().collect();
        let producer = std::thread::spawn(move || {
            for chunk in requests.chunks(61) {
                sender.send_burst(chunk.to_vec()).unwrap();
            }
            sender.flush().unwrap();
        });
        engine.serve_queue(&queue).unwrap();
        producer.join().unwrap();
    } else {
        for request in scenario.stream() {
            engine.submit(request).unwrap();
        }
    }
    let report = engine.finish().unwrap();

    let replay = scenario.epoch_replay(&SimRunner::new()).unwrap();
    let name = scenario.name();
    assert_eq!(
        report.epoch_fingerprints.len() as u32,
        replay.epochs(),
        "{name}: epoch count diverged"
    );
    assert_eq!(
        report.boundaries, replay.boundaries,
        "{name}: epoch boundaries diverged"
    );
    for epoch in 0..replay.epochs() {
        for shard in 0..scenario.shards {
            assert_eq!(
                report.epoch_fingerprints[epoch as usize][shard as usize],
                replay.fingerprint(epoch, shard),
                "{name}: epoch {epoch} shard {shard} boundary fingerprint diverged"
            );
        }
        assert_eq!(
            report.accounting.epoch(epoch),
            replay.accounting.epoch(epoch),
            "{name}: epoch {epoch} cost sub-summary diverged"
        );
    }
    assert_eq!(
        report.accounting, replay.accounting,
        "{name}: the epoch-versioned ledger diverged"
    );
    assert_eq!(report.merged, replay.accounting.merged(), "{name}: merged");
    assert_eq!(
        report.migration,
        replay.accounting.migration_total(),
        "{name}: migration cost diverged"
    );
    assert_eq!(report.requests as usize, scenario.requests, "{name}");
    report
}

/// The acceptance criterion: S = 4 with a policy resharding mid-stream,
/// serial / 2 / auto thread counts via the ingestion queue, byte-identical
/// to the epoch-segmented serial reference replay (per-epoch fingerprints
/// and the merged `ShardedCostSummary` including migration cost).
#[test]
fn four_shard_resharding_run_matches_the_epoch_segmented_replay() {
    let mut scenario =
        ShardedScenario::hot_shard(AlgorithmKind::RotorPush, 4, 6, 10_000, 2022, 10, 2.0);
    scenario.reshard = ReshardSchedule::Policy(ReshardPolicy::MoveHottest {
        every: 500,
        max_moves: 16,
    });
    let serial = assert_matches_epoch_replay(&scenario, Parallelism::Serial, 512, false);
    assert!(
        serial.epoch_fingerprints.len() > 2,
        "the hot-shard stream must trigger several reshards"
    );
    assert!(serial.migration.moved > 0);
    let threaded = assert_matches_epoch_replay(&scenario, Parallelism::Threads(2), 512, true);
    let auto = assert_matches_epoch_replay(&scenario, Parallelism::Auto, 2_048, true);
    assert_eq!(serial, threaded);
    assert_eq!(serial, auto);
}

/// The warm acceptance criterion: the same policy-resharding run under
/// [`HandoverMode::Warm`] — rotor/recency state carried across every epoch,
/// untouched shards kept live — still matches the (warm) epoch-segmented
/// serial reference byte for byte at serial / 2 / auto thread counts.
#[test]
fn warm_resharding_run_matches_the_warm_epoch_segmented_replay() {
    let mut scenario =
        ShardedScenario::hot_shard(AlgorithmKind::RotorPush, 4, 6, 10_000, 2022, 10, 2.0);
    scenario.handover = HandoverMode::Warm;
    scenario.reshard = ReshardSchedule::Policy(ReshardPolicy::MoveHottest {
        every: 500,
        max_moves: 16,
    });
    let serial = assert_matches_epoch_replay(&scenario, Parallelism::Serial, 512, false);
    assert!(serial.epoch_fingerprints.len() > 2);
    assert!(serial.migration.moved > 0);
    let threaded = assert_matches_epoch_replay(&scenario, Parallelism::Threads(2), 512, true);
    let auto = assert_matches_epoch_replay(&scenario, Parallelism::Auto, 2_048, true);
    assert_eq!(serial, threaded);
    assert_eq!(serial, auto);

    // Warm and cold handovers migrate the same elements at the same cost —
    // only the carried tree state (and the work to rebuild it) differs.
    let mut cold = scenario.clone();
    cold.handover = HandoverMode::Cold;
    let cold = assert_matches_epoch_replay(&cold, Parallelism::Serial, 512, false);
    assert_eq!(serial.migration, cold.migration);
    assert_eq!(serial.boundaries, cold.boundaries);
}

/// Explicit `Reshard` ingest frames interleaved with bursts are the same
/// protocol as a manual schedule: the queue-fed engine must match the
/// offline epoch replay of the equivalent `ReshardSchedule::Manual`.
#[test]
fn reshard_frames_interleaved_with_bursts_match_the_manual_schedule() {
    let base = ShardedScenario::new(
        AlgorithmKind::MaxPush,
        WorkloadSpec::Combined { a: 1.7, p: 0.6 },
        4,
        5,
        6_000,
        7,
    );
    let plans = [
        ReshardPlan::new([(ElementId::new(0), 2), (ElementId::new(1), 3)]),
        ReshardPlan::new([(ElementId::new(0), 1), (ElementId::new(40), 0)]),
    ];
    let positions = [2_000usize, 4_000];

    // Queue-fed: bursts with Reshard frames at the boundary positions.
    let mut engine = ShardedEngineConfig::from_scenario(&base)
        .parallelism(Parallelism::Threads(3))
        .drain_threshold(777)
        .build()
        .unwrap();
    let (sender, queue) = ingest_channel(4);
    let requests: Vec<ElementId> = base.stream().collect();
    let frames: Vec<(usize, ReshardPlan)> = positions
        .iter()
        .copied()
        .zip(plans.iter().cloned())
        .collect();
    let producer = std::thread::spawn(move || {
        let mut sent = 0usize;
        for chunk in requests.chunks(250) {
            sender.send_burst(chunk.to_vec()).unwrap();
            sent += chunk.len();
            for (at, plan) in &frames {
                if *at == sent {
                    // The frame carries the warm mode explicitly; the engine
                    // itself was built with the cold default.
                    sender.reshard(plan.clone(), HandoverMode::Warm).unwrap();
                }
            }
            if sent % 1_000 == 0 {
                sender.flush().unwrap();
            }
        }
    });
    engine.serve_queue(&queue).unwrap();
    producer.join().unwrap();
    let report = engine.finish().unwrap();

    // The offline oracle: the same schedule as a warm Manual scenario.
    let mut manual = base.clone();
    manual.handover = HandoverMode::Warm;
    manual.reshard = ReshardSchedule::Manual(
        positions
            .iter()
            .zip(plans)
            .map(|(&at, plan)| ReshardEvent { at, plan })
            .collect(),
    );
    let replay = manual.epoch_replay(&SimRunner::new()).unwrap();
    assert_eq!(report.boundaries, replay.boundaries);
    assert_eq!(report.accounting, replay.accounting);
    for epoch in 0..replay.epochs() {
        for shard in 0..4 {
            assert_eq!(
                report.epoch_fingerprints[epoch as usize][shard as usize],
                replay.fingerprint(epoch, shard),
                "epoch {epoch} shard {shard}"
            );
        }
    }

    // And the manual-schedule engine drives itself to the same state
    // (drain counts differ by cadence; every observable result must not).
    let auto = assert_matches_epoch_replay(&manual, Parallelism::Threads(2), 999, false);
    assert_eq!(report.per_shard, auto.per_shard);
    assert_eq!(report.accounting, auto.accounting);
    assert_eq!(report.epoch_fingerprints, auto.epoch_fingerprints);
    assert_eq!(report.boundaries, auto.boundaries);
    assert_eq!(report.migration, auto.migration);
}

/// A manual event scheduled past the stream end fires at the end of the
/// run on both sides: the engine closes the final epoch empty at `finish`,
/// and the oracle clamps the boundary to the stream length — the two must
/// still agree byte for byte (regression: the engine used to record the
/// submitted count while the oracle recorded the literal event position).
#[test]
fn manual_events_past_the_stream_end_fire_at_finish() {
    let mut scenario = ShardedScenario::new(
        AlgorithmKind::RotorPush,
        WorkloadSpec::Zipf { a: 1.5 },
        3,
        4,
        1_000,
        5,
    );
    scenario.reshard = ReshardSchedule::Manual(vec![
        ReshardEvent {
            at: 400,
            plan: ReshardPlan::new([(ElementId::new(1), 2)]),
        },
        ReshardEvent {
            at: 5_000, // Beyond the 1000-request stream.
            plan: ReshardPlan::new([(ElementId::new(1), 0)]),
        },
    ]);
    let report = assert_matches_epoch_replay(&scenario, Parallelism::Serial, 128, false);
    assert_eq!(report.boundaries, vec![400, 1_000]);
    assert_eq!(report.epoch_fingerprints.len(), 3);
    // The past-end epoch served nothing but still paid its migration.
    assert_eq!(report.accounting.epoch(2).requests(), 0);
    assert_eq!(report.accounting.epoch(2).migration().moved, 1);
}

/// Every online algorithm survives a mid-stream reshard and still matches
/// the replay (Static-Opt is rejected up front — covered in the engine's
/// unit tests).
#[test]
fn every_online_algorithm_reshards_deterministically() {
    for algorithm in AlgorithmKind::ALL {
        if algorithm == AlgorithmKind::StaticOpt {
            continue;
        }
        let mut scenario =
            ShardedScenario::new(algorithm, WorkloadSpec::Zipf { a: 1.6 }, 3, 5, 3_000, 42);
        scenario.reshard = ReshardSchedule::Policy(ReshardPolicy::MoveHottest {
            every: 600,
            max_moves: 4,
        });
        assert_matches_epoch_replay(&scenario, Parallelism::Threads(3), 321, true);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The acceptance property: routers × online algorithms × random reshard
    /// cadences, shard counts, drain cadences and thread counts — resharded
    /// serving is byte-identical to the epoch-segmented standalone replay.
    #[test]
    fn resharded_serving_equals_the_epoch_segmented_replay(
        router_index in 0usize..3,
        algorithm_index in 0usize..AlgorithmKind::ALL.len() - 1,
        shards in 2u32..5,
        shard_levels in 3u32..6,
        requests in 400usize..1_500,
        seed in 0u64..1_000,
        every in 100usize..400,
        max_moves in 1u32..8,
        drain_threshold in 1usize..2_000,
        threads in 1usize..5,
        via_queue in any::<bool>(),
        warm in any::<bool>(),
    ) {
        // `ALL` ends with the offline Static-Opt at no fixed index, so
        // filter rather than slice.
        let algorithm = AlgorithmKind::ALL
            .into_iter()
            .filter(|&kind| kind != AlgorithmKind::StaticOpt)
            .nth(algorithm_index % (AlgorithmKind::ALL.len() - 1))
            .unwrap();
        let mut scenario = ShardedScenario::new(
            algorithm,
            WorkloadSpec::Combined { a: 1.4, p: 0.5 },
            shards,
            shard_levels,
            requests,
            seed,
        );
        scenario.router = ShardRouter::ALL[router_index];
        scenario.handover = if warm { HandoverMode::Warm } else { HandoverMode::Cold };
        scenario.reshard = ReshardSchedule::Policy(ReshardPolicy::MoveHottest {
            every,
            max_moves,
        });
        assert_matches_epoch_replay(
            &scenario,
            Parallelism::from_thread_count(threads),
            drain_threshold,
            via_queue,
        );
    }
}
