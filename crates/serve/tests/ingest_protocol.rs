//! Edge cases of the channel-based ingestion protocol: flush-then-send,
//! producers dropped mid-burst, zero-capacity channels, and `Reshard`
//! control frames interleaved with bursts — written against the
//! transport-agnostic `Ingest` trait wherever a producer speaks the
//! protocol, so the same shapes hold verbatim for the TCP transport
//! (`tests/wire_protocol.rs` mirrors them over a loopback socket).

use satn_core::AlgorithmKind;
use satn_serve::{
    ingest_channel, HandoverMode, Ingest, Parallelism, ReshardPlan, ServeError, ShardedEngine,
    ShardedEngineConfig, ShardedScenario,
};
use satn_sim::WorkloadSpec;
use satn_tree::ElementId;

fn scenario(requests: usize) -> ShardedScenario {
    ShardedScenario::new(
        AlgorithmKind::RotorPush,
        WorkloadSpec::Zipf { a: 1.7 },
        3,
        5,
        requests,
        99,
    )
}

fn engine(scenario: &ShardedScenario, parallelism: Parallelism) -> ShardedEngine {
    ShardedEngineConfig::from_scenario(scenario)
        .parallelism(parallelism)
        .build()
        .unwrap()
}

/// Flushing mid-stream and then continuing to send is fully transparent:
/// the run is byte-identical to one with no flushes at all.
#[test]
fn flush_then_send_changes_nothing_but_the_drain_count() {
    let scenario = scenario(2_400);
    let requests: Vec<ElementId> = scenario.stream().collect();

    let mut unflushed = engine(&scenario, Parallelism::Threads(2));
    unflushed.submit_burst(&requests).unwrap();
    let unflushed = unflushed.finish().unwrap();

    let mut queued = engine(&scenario, Parallelism::Threads(2));
    let (mut sender, queue) = ingest_channel(2);
    let producer = std::thread::spawn({
        let requests = requests.clone();
        move || {
            for (index, chunk) in requests.chunks(100).enumerate() {
                Ingest::send_burst(&mut sender, chunk).unwrap();
                // Flush after every second burst, then keep sending.
                if index % 2 == 1 {
                    Ingest::flush(&mut sender).unwrap();
                }
            }
            Ingest::flush(&mut sender).unwrap();
        }
    });
    queued.serve_queue(&queue).unwrap();
    producer.join().unwrap();
    let flushed = queued.finish().unwrap();

    assert!(flushed.drains > unflushed.drains);
    assert_eq!(flushed.per_shard, unflushed.per_shard);
    assert_eq!(flushed.accounting, unflushed.accounting);
}

/// A producer dropped mid-burst (without flush or shutdown handshake) still
/// yields a clean run: the engine serves exactly what arrived, then drains
/// on queue closure.
#[test]
fn sender_dropped_mid_burst_serves_the_delivered_prefix() {
    let scenario = scenario(2_000);
    let requests: Vec<ElementId> = scenario.stream().collect();
    let mut queued = engine(&scenario, Parallelism::Serial);
    let (mut sender, queue) = ingest_channel(4);
    let delivered: Vec<ElementId> = requests[..700].to_vec();
    let producer = std::thread::spawn({
        let delivered = delivered.clone();
        move || {
            for chunk in delivered.chunks(70) {
                Ingest::send_burst(&mut sender, chunk).unwrap();
            }
            // Dropped here: no flush, no shutdown message.
        }
    });
    queued.serve_queue(&queue).unwrap();
    producer.join().unwrap();
    let report = queued.finish().unwrap();
    assert_eq!(report.requests, 700);

    // Identical to submitting the delivered prefix directly.
    let mut direct = engine(&scenario, Parallelism::Serial);
    direct.submit_burst(&delivered).unwrap();
    let direct = direct.finish().unwrap();
    assert_eq!(report.per_shard, direct.per_shard);
    assert_eq!(report.accounting, direct.accounting);
}

/// One of several cloned producers dropping early never wedges the queue;
/// the survivors' requests all arrive, and sends into a dropped consumer
/// fail cleanly with the unified `ServeError::Closed`.
#[test]
fn surviving_senders_keep_the_queue_open() {
    let scenario = scenario(600);
    let requests: Vec<ElementId> = scenario.stream().collect();
    let mut queued = engine(&scenario, Parallelism::Serial);
    let (sender, queue) = ingest_channel(4);
    let mut clone = sender.clone();
    drop(sender); // The original goes away mid-setup.
    let producer = std::thread::spawn({
        let requests = requests.clone();
        move || {
            for chunk in requests.chunks(50) {
                Ingest::send_burst(&mut clone, chunk).unwrap();
            }
        }
    });
    queued.serve_queue(&queue).unwrap();
    producer.join().unwrap();
    assert_eq!(queued.submitted(), 600);
    drop(queued);

    // With the consumer gone, every protocol message errors — through the
    // trait and the inherent methods alike.
    let (mut sender, queue) = ingest_channel(1);
    drop(queue);
    assert!(matches!(
        Ingest::send(&mut sender, ElementId::new(0)),
        Err(ServeError::Closed)
    ));
    assert!(matches!(
        Ingest::send_burst(&mut sender, &[ElementId::new(0)]),
        Err(ServeError::Closed)
    ));
    assert!(matches!(
        Ingest::flush(&mut sender),
        Err(ServeError::Closed)
    ));
    assert!(matches!(
        Ingest::reshard(&mut sender, &ReshardPlan::empty(), HandoverMode::Cold),
        Err(ServeError::Closed)
    ));
    assert!(ServeError::Closed.is_disconnect());
}

/// A zero-capacity channel would deadlock single-threaded producers and is
/// rejected at construction.
#[test]
#[should_panic(expected = "must be positive")]
fn zero_capacity_channels_are_rejected() {
    let _ = ingest_channel(0);
}

/// `Reshard` frames interleaved with bursts: every request sent before the
/// frame is served under the old epoch, every request after it under the
/// new one, regardless of burst boundaries and queue capacity.
#[test]
fn reshard_frames_interleave_cleanly_with_bursts() {
    let scenario = scenario(1_800);
    let requests: Vec<ElementId> = scenario.stream().collect();
    let plan = ReshardPlan::new([(ElementId::new(0), 1), (ElementId::new(3), 2)]);

    let mut queued = engine(&scenario, Parallelism::Threads(2));
    let (mut sender, queue) = ingest_channel(1); // Minimal capacity: full backpressure.
    let producer = std::thread::spawn({
        let requests = requests.clone();
        let plan = plan.clone();
        move || {
            Ingest::send_burst(&mut sender, &requests[..900]).unwrap();
            Ingest::reshard(&mut sender, &plan, HandoverMode::Warm).unwrap();
            // Continue in single sends and bursts after the handover.
            for &request in &requests[900..950] {
                Ingest::send(&mut sender, request).unwrap();
            }
            Ingest::send_burst(&mut sender, &requests[950..]).unwrap();
        }
    });
    queued.serve_queue(&queue).unwrap();
    producer.join().unwrap();
    let queued = queued.finish().unwrap();

    // Equivalent direct run: submit 900, reshard, submit the rest.
    let mut direct = engine(&scenario, Parallelism::Threads(2));
    direct.submit_burst(&requests[..900]).unwrap();
    direct.reshard_with(plan, HandoverMode::Warm).unwrap();
    direct.submit_burst(&requests[900..]).unwrap();
    let direct = direct.finish().unwrap();

    assert_eq!(queued.boundaries, vec![900]);
    assert_eq!(queued.epoch_fingerprints.len(), 2);
    assert_eq!(queued.per_shard, direct.per_shard);
    assert_eq!(queued.accounting, direct.accounting);
    assert_eq!(queued.epoch_fingerprints, direct.epoch_fingerprints);
    assert!(queued.migration.moved >= 1);
}
