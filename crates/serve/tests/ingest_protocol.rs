//! Edge cases of the channel-based ingestion protocol: flush-then-send,
//! producers dropped mid-burst, zero-capacity channels, and `Reshard`
//! control frames interleaved with bursts.

use satn_core::AlgorithmKind;
use satn_serve::{
    ingest_channel, IngestClosed, Parallelism, ReshardPlan, ShardedEngine, ShardedScenario,
};
use satn_sim::WorkloadSpec;
use satn_tree::ElementId;

fn scenario(requests: usize) -> ShardedScenario {
    ShardedScenario::new(
        AlgorithmKind::RotorPush,
        WorkloadSpec::Zipf { a: 1.7 },
        3,
        5,
        requests,
        99,
    )
}

/// Flushing mid-stream and then continuing to send is fully transparent:
/// the run is byte-identical to one with no flushes at all.
#[test]
fn flush_then_send_changes_nothing_but_the_drain_count() {
    let scenario = scenario(2_400);
    let requests: Vec<ElementId> = scenario.stream().collect();

    let mut unflushed = ShardedEngine::from_scenario(&scenario, Parallelism::Threads(2)).unwrap();
    unflushed.submit_burst(&requests).unwrap();
    let unflushed = unflushed.finish().unwrap();

    let mut engine = ShardedEngine::from_scenario(&scenario, Parallelism::Threads(2)).unwrap();
    let (sender, queue) = ingest_channel(2);
    let producer = std::thread::spawn({
        let requests = requests.clone();
        move || {
            for (index, chunk) in requests.chunks(100).enumerate() {
                sender.send_burst(chunk.to_vec()).unwrap();
                // Flush after every second burst, then keep sending.
                if index % 2 == 1 {
                    sender.flush().unwrap();
                }
            }
            sender.flush().unwrap();
        }
    });
    engine.serve_queue(&queue).unwrap();
    producer.join().unwrap();
    let flushed = engine.finish().unwrap();

    assert!(flushed.drains > unflushed.drains);
    assert_eq!(flushed.per_shard, unflushed.per_shard);
    assert_eq!(flushed.accounting, unflushed.accounting);
}

/// A producer dropped mid-burst (without flush or shutdown handshake) still
/// yields a clean run: the engine serves exactly what arrived, then drains
/// on queue closure.
#[test]
fn sender_dropped_mid_burst_serves_the_delivered_prefix() {
    let scenario = scenario(2_000);
    let requests: Vec<ElementId> = scenario.stream().collect();
    let mut engine = ShardedEngine::from_scenario(&scenario, Parallelism::Serial).unwrap();
    let (sender, queue) = ingest_channel(4);
    let delivered: Vec<ElementId> = requests[..700].to_vec();
    let producer = std::thread::spawn({
        let delivered = delivered.clone();
        move || {
            for chunk in delivered.chunks(70) {
                sender.send_burst(chunk.to_vec()).unwrap();
            }
            // Dropped here: no flush, no shutdown message.
        }
    });
    engine.serve_queue(&queue).unwrap();
    producer.join().unwrap();
    let report = engine.finish().unwrap();
    assert_eq!(report.requests, 700);

    // Identical to submitting the delivered prefix directly.
    let mut direct = ShardedEngine::from_scenario(&scenario, Parallelism::Serial).unwrap();
    direct.submit_burst(&delivered).unwrap();
    let direct = direct.finish().unwrap();
    assert_eq!(report.per_shard, direct.per_shard);
    assert_eq!(report.accounting, direct.accounting);
}

/// One of several cloned producers dropping early never wedges the queue;
/// the survivors' requests all arrive, and sends into a dropped consumer
/// fail cleanly.
#[test]
fn surviving_senders_keep_the_queue_open() {
    let scenario = scenario(600);
    let requests: Vec<ElementId> = scenario.stream().collect();
    let mut engine = ShardedEngine::from_scenario(&scenario, Parallelism::Serial).unwrap();
    let (sender, queue) = ingest_channel(4);
    let clone = sender.clone();
    drop(sender); // The original goes away mid-setup.
    let producer = std::thread::spawn({
        let requests = requests.clone();
        move || {
            for chunk in requests.chunks(50) {
                clone.send_burst(chunk.to_vec()).unwrap();
            }
        }
    });
    engine.serve_queue(&queue).unwrap();
    producer.join().unwrap();
    assert_eq!(engine.submitted(), 600);
    drop(engine);

    // With the consumer gone, every protocol message errors.
    let (sender, queue) = ingest_channel(1);
    drop(queue);
    assert_eq!(sender.send(ElementId::new(0)), Err(IngestClosed));
    assert_eq!(
        sender.send_burst(vec![ElementId::new(0)]),
        Err(IngestClosed)
    );
    assert_eq!(sender.flush(), Err(IngestClosed));
    assert_eq!(sender.reshard(ReshardPlan::empty()), Err(IngestClosed));
}

/// A zero-capacity channel would deadlock single-threaded producers and is
/// rejected at construction.
#[test]
#[should_panic(expected = "must be positive")]
fn zero_capacity_channels_are_rejected() {
    let _ = ingest_channel(0);
}

/// `Reshard` frames interleaved with bursts: every request sent before the
/// frame is served under the old epoch, every request after it under the
/// new one, regardless of burst boundaries and queue capacity.
#[test]
fn reshard_frames_interleave_cleanly_with_bursts() {
    let scenario = scenario(1_800);
    let requests: Vec<ElementId> = scenario.stream().collect();
    let plan = ReshardPlan::new([(ElementId::new(0), 1), (ElementId::new(3), 2)]);

    let mut engine = ShardedEngine::from_scenario(&scenario, Parallelism::Threads(2)).unwrap();
    let (sender, queue) = ingest_channel(1); // Minimal capacity: full backpressure.
    let producer = std::thread::spawn({
        let requests = requests.clone();
        let plan = plan.clone();
        move || {
            sender.send_burst(requests[..900].to_vec()).unwrap();
            sender.reshard(plan).unwrap();
            // Continue in single sends and bursts after the handover.
            for &request in &requests[900..950] {
                sender.send(request).unwrap();
            }
            sender.send_burst(requests[950..].to_vec()).unwrap();
        }
    });
    engine.serve_queue(&queue).unwrap();
    producer.join().unwrap();
    let queued = engine.finish().unwrap();

    // Equivalent direct run: submit 900, reshard, submit the rest.
    let mut direct = ShardedEngine::from_scenario(&scenario, Parallelism::Threads(2)).unwrap();
    direct.submit_burst(&requests[..900]).unwrap();
    direct.reshard(plan).unwrap();
    direct.submit_burst(&requests[900..]).unwrap();
    let direct = direct.finish().unwrap();

    assert_eq!(queued.boundaries, vec![900]);
    assert_eq!(queued.epoch_fingerprints.len(), 2);
    assert_eq!(queued.per_shard, direct.per_shard);
    assert_eq!(queued.accounting, direct.accounting);
    assert_eq!(queued.epoch_fingerprints, direct.epoch_fingerprints);
    assert!(queued.migration.moved >= 1);
}
