//! The sharded-serving determinism oracle, end to end.
//!
//! * The **acceptance test**: a `--shards 4 --threads N` run through the
//!   channel-based ingestion layer produces per-shard fingerprints and a
//!   merged cost summary byte-identical to the serial single-shard reference
//!   replay (each shard's subsequence served by `satn-sim`'s `SimRunner` on
//!   a standalone tree).
//! * The **property test**: for *every* [`ShardRouter`] policy, every
//!   algorithm, and randomized shard counts / sizes / drain cadences /
//!   thread counts, sharded serving over a partitioned stream reproduces
//!   the standalone per-shard replays byte for byte — costs and
//!   fingerprints.

use proptest::prelude::*;
use satn_core::AlgorithmKind;
use satn_serve::{ingest_channel, Parallelism, ShardedEngineConfig};
use satn_sim::{ShardRouter, ShardedScenario, SimRunner, WorkloadSpec};
use satn_tree::{CostSummary, ElementId};

/// Runs `scenario` through the engine (optionally via the ingest queue) and
/// asserts byte-identity against the serial standalone replay of every
/// shard. Returns the merged summary for further checks.
fn assert_matches_reference(
    scenario: &ShardedScenario,
    parallelism: Parallelism,
    drain_threshold: usize,
    via_queue: bool,
) -> CostSummary {
    let mut engine = ShardedEngineConfig::from_scenario(scenario)
        .parallelism(parallelism)
        .drain_threshold(drain_threshold)
        .build()
        .unwrap();
    if via_queue {
        let (sender, queue) = ingest_channel(4);
        let requests: Vec<ElementId> = scenario.stream().collect();
        let producer = std::thread::spawn(move || {
            for chunk in requests.chunks(61) {
                sender.send_burst(chunk.to_vec()).unwrap();
            }
            // Exercise the flush protocol mid-stream shutdown.
            sender.flush().unwrap();
        });
        engine.serve_queue(&queue).unwrap();
        producer.join().unwrap();
    } else {
        for request in scenario.stream() {
            engine.submit(request).unwrap();
        }
    }
    let report = engine.finish().unwrap();

    let runner = SimRunner::new();
    let mut merged = CostSummary::new();
    for (shard, reference) in scenario.shard_scenarios().iter().enumerate() {
        let expected = runner.run(reference).unwrap();
        let got = &report.per_shard[shard];
        assert_eq!(
            got.summary,
            expected.summary,
            "{}: shard {shard} cost summary diverged",
            scenario.name()
        );
        assert_eq!(
            got.fingerprint,
            expected.final_snapshot(),
            "{}: shard {shard} fingerprint diverged",
            scenario.name()
        );
        merged.merge(&expected.summary);
    }
    assert_eq!(
        report.merged,
        merged,
        "{}: merged summary is not the shard-order merge of the references",
        scenario.name()
    );
    assert_eq!(report.merged.requests() as usize, scenario.requests);
    report.merged
}

/// The acceptance criterion: `--shards 4 --threads N` (N = all cores, and a
/// fixed multi-thread count) through the ingestion queue, byte-identical to
/// the serial reference replay.
#[test]
fn four_shard_parallel_run_matches_serial_reference_replay() {
    let mut scenario = ShardedScenario::new(
        AlgorithmKind::RotorPush,
        WorkloadSpec::Combined { a: 1.9, p: 0.75 },
        4,
        6,
        10_000,
        2022,
    );
    scenario.router = ShardRouter::Hash;
    let serial = assert_matches_reference(&scenario, Parallelism::Serial, 512, false);
    let threaded = assert_matches_reference(&scenario, Parallelism::Threads(4), 512, true);
    let auto = assert_matches_reference(&scenario, Parallelism::Auto, 2_048, true);
    assert_eq!(serial, threaded);
    assert_eq!(serial, auto);
}

#[test]
fn every_router_policy_matches_at_every_thread_count() {
    for router in ShardRouter::ALL {
        let mut scenario = ShardedScenario::new(
            AlgorithmKind::MaxPush,
            WorkloadSpec::Zipf { a: 1.5 },
            3,
            5,
            4_000,
            7,
        );
        scenario.router = router;
        let serial = assert_matches_reference(&scenario, Parallelism::Serial, 1_000, false);
        let threaded = assert_matches_reference(&scenario, Parallelism::Threads(3), 97, true);
        assert_eq!(serial, threaded, "{router}");
    }
}

#[test]
fn single_shard_engine_degenerates_to_the_plain_scenario() {
    // With S = 1 every policy routes everything to shard 0 and the engine
    // must reproduce an ordinary single-tree run.
    for router in ShardRouter::ALL {
        let mut scenario = ShardedScenario::new(
            AlgorithmKind::RotorPush,
            WorkloadSpec::Temporal { p: 0.8 },
            1,
            6,
            3_000,
            42,
        );
        scenario.router = router;
        assert_matches_reference(&scenario, Parallelism::Threads(2), 333, false);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The satellite property: every `ShardRouter` policy × every algorithm,
    /// randomized shard counts, tree sizes, seeds, drain cadences and thread
    /// counts — sharded serving over the partitioned stream is byte-identical
    /// to serving each shard's subsequence serially on a standalone tree.
    #[test]
    fn sharded_serving_equals_standalone_per_shard_replay(
        router_index in 0usize..3,
        algorithm_index in 0usize..AlgorithmKind::ALL.len(),
        shards in 1u32..5,
        shard_levels in 3u32..6,
        requests in 200usize..1_200,
        seed in 0u64..1_000,
        drain_threshold in 1usize..2_000,
        threads in 1usize..5,
        via_queue in any::<bool>(),
    ) {
        let workload = WorkloadSpec::Combined { a: 1.4, p: 0.5 };
        let mut scenario = ShardedScenario::new(
            AlgorithmKind::ALL[algorithm_index],
            workload,
            shards,
            shard_levels,
            requests,
            seed,
        );
        scenario.router = ShardRouter::ALL[router_index];
        assert_matches_reference(
            &scenario,
            Parallelism::from_thread_count(threads),
            drain_threshold,
            via_queue,
        );
    }
}
