//! Property: every snapshot the engine publishes — and therefore every
//! lookup answered from it — matches the **serial prefix replay** at that
//! checkpoint, at every thread count and drain cadence.
//!
//! A snapshot stamped `served = n` freezes the engine's state at the drain
//! boundary after the first `n` global requests. The oracle
//! ([`ShardedScenario::prefix_fingerprints`]) replays exactly those `n`
//! requests serially, shard by shard, and renders each tree's placement.
//! Fingerprints are byte-identical renderings of the full placement, so
//! fingerprint equality implies every individual lookup answer (node,
//! level, access cost) agrees with the serial replay too.
//!
//! Each run also races a lock-free reader thread against the engine while
//! it drains: whatever snapshots that thread happens to catch mid-flight
//! are held to the same oracle, proving the read phase never observes a
//! half-published state.

use satn_serve::{EngineSnapshot, Parallelism, ShardedEngineConfig};
use satn_sim::{AlgorithmKind, ShardedScenario, SimRunner, WorkloadSpec};
use satn_tree::ElementId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

fn scenario() -> ShardedScenario {
    ShardedScenario::new(
        AlgorithmKind::RotorPush,
        WorkloadSpec::Combined { a: 1.8, p: 0.7 },
        4,
        5,
        3_000,
        22,
    )
}

/// Drives the full scenario stream through an engine, collecting every
/// distinct snapshot the submitting thread observes at drain boundaries
/// plus whatever a concurrent lock-free reader catches mid-flight.
fn observed_snapshots(parallelism: Parallelism, threshold: usize) -> Vec<Arc<EngineSnapshot>> {
    let scenario = scenario();
    let mut engine = ShardedEngineConfig::from_scenario(&scenario)
        .parallelism(parallelism)
        .drain_threshold(threshold)
        .build()
        .unwrap();
    let mut reader = engine.snapshots();

    let stop = Arc::new(AtomicBool::new(false));
    let racer = {
        let mut reader = reader.clone();
        let stop = Arc::clone(&stop);
        let universe = scenario.universe();
        thread::spawn(move || {
            let mut caught: Vec<Arc<EngineSnapshot>> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let snapshot = Arc::clone(reader.snapshot());
                if caught.last().map(|s| s.served()) == Some(snapshot.served()) {
                    continue;
                }
                // Answer a spread of lookups from whatever is current —
                // lock-free, while the engine is draining.
                for element in (0..universe).step_by(7) {
                    let answer = snapshot.lookup(ElementId::new(element)).unwrap();
                    assert_eq!(answer.served, snapshot.served());
                    assert_eq!(answer.epoch, snapshot.epoch());
                }
                caught.push(snapshot);
            }
            caught
        })
    };

    let mut observed: Vec<Arc<EngineSnapshot>> = Vec::new();
    for request in scenario.stream() {
        engine.submit(request).unwrap();
        let snapshot = reader.snapshot();
        if observed.last().map(|s| s.served()) != Some(snapshot.served()) {
            observed.push(Arc::clone(snapshot));
        }
    }
    engine.finish().unwrap();
    observed.push(Arc::clone(reader.snapshot()));
    stop.store(true, Ordering::Relaxed);
    observed.extend(racer.join().unwrap());
    observed
}

/// The property itself: every observed snapshot equals the serial replay
/// of its own prefix of the request stream, byte for byte.
fn snapshots_match_prefix_replay(parallelism: Parallelism, threshold: usize) {
    let scenario = scenario();
    let runner = SimRunner::new();
    let observed = observed_snapshots(parallelism, threshold);

    // Dedup by served stamp; two observations of the same checkpoint
    // (submitter vs racer) must already agree with each other.
    let mut checkpoints: BTreeMap<u64, Arc<EngineSnapshot>> = BTreeMap::new();
    for snapshot in observed {
        let shards = scenario.partition().shards();
        if let Some(previous) = checkpoints.get(&snapshot.served()) {
            for shard in 0..shards {
                assert_eq!(previous.fingerprint(shard), snapshot.fingerprint(shard));
            }
        } else {
            checkpoints.insert(snapshot.served(), snapshot);
        }
    }
    assert!(
        checkpoints.keys().any(|&served| served > 0),
        "the run must publish at least one post-drain snapshot"
    );
    assert_eq!(
        checkpoints.keys().next_back(),
        Some(&(scenario.requests as u64)),
        "the final snapshot carries the whole stream"
    );

    for (&served, snapshot) in &checkpoints {
        let reference = scenario
            .prefix_fingerprints(&runner, served as usize)
            .unwrap();
        for shard in 0..scenario.partition().shards() {
            assert_eq!(
                snapshot.fingerprint(shard),
                reference[shard as usize],
                "shard {shard} diverged from the serial replay at checkpoint {served} \
                 ({parallelism:?}, threshold {threshold})"
            );
        }
        // Spot-check the answers a client would actually receive.
        for element in (0..scenario.universe()).step_by(11) {
            let answer = snapshot.lookup(ElementId::new(element)).unwrap();
            assert_eq!(answer.element, ElementId::new(element));
            assert_eq!(answer.served, served);
            let (shard, local) = snapshot
                .partition()
                .localize(ElementId::new(element))
                .unwrap();
            assert_eq!(shard, answer.shard);
            assert_eq!(snapshot.shard(shard).node_of(local), Some(answer.node));
        }
    }
}

/// Regression for the partition-publication cost: within one epoch every
/// published snapshot must share the **same** partition allocation (one
/// `Arc` clone per publication, never a deep re-clone per drain); only a
/// reshard's epoch bump mints a fresh one, which the new epoch's snapshots
/// then share again.
#[test]
fn snapshots_share_one_partition_allocation_per_epoch() {
    let scenario = scenario();
    let mut engine = ShardedEngineConfig::from_scenario(&scenario)
        .parallelism(Parallelism::Serial)
        .drain_threshold(256)
        .build()
        .unwrap();
    let mut reader = engine.snapshots();

    let mut epoch0: Vec<Arc<EngineSnapshot>> = Vec::new();
    for request in scenario.stream() {
        engine.submit(request).unwrap();
        let snapshot = reader.snapshot();
        if epoch0.last().map(|s| s.served()) != Some(snapshot.served()) {
            epoch0.push(Arc::clone(snapshot));
        }
    }
    assert!(
        epoch0.len() >= 4,
        "the stream must cross several drain boundaries for the property to bite"
    );
    for snapshot in &epoch0 {
        assert_eq!(snapshot.epoch(), 0);
        assert!(
            std::ptr::eq(snapshot.partition(), epoch0[0].partition()),
            "an epoch-0 snapshot re-cloned the partition instead of sharing the cached Arc"
        );
    }

    // The reshard bumps the epoch: its publication carries a new shared
    // allocation, which every later epoch-1 snapshot reuses in turn.
    engine
        .reshard(satn_workloads::shard::ReshardPlan::new([(
            ElementId::new(0),
            1,
        )]))
        .unwrap();
    let bumped = Arc::clone(reader.snapshot());
    assert_eq!(bumped.epoch(), 1);
    assert!(
        !std::ptr::eq(bumped.partition(), epoch0[0].partition()),
        "the epoch bump must mint a fresh partition allocation"
    );
    let mut epoch1 = vec![bumped];
    for request in scenario.stream() {
        engine.submit(request).unwrap();
        let snapshot = reader.snapshot();
        if epoch1.last().map(|s| s.served()) != Some(snapshot.served()) {
            epoch1.push(Arc::clone(snapshot));
        }
    }
    engine.finish().unwrap();
    epoch1.push(Arc::clone(reader.snapshot()));
    assert!(epoch1.len() >= 4);
    for snapshot in &epoch1 {
        assert_eq!(snapshot.epoch(), 1);
        assert!(
            std::ptr::eq(snapshot.partition(), epoch1[0].partition()),
            "an epoch-1 snapshot re-cloned the partition instead of sharing the cached Arc"
        );
    }
}

#[test]
fn serial_snapshots_match_the_prefix_replay() {
    snapshots_match_prefix_replay(Parallelism::Serial, 250);
}

#[test]
fn two_thread_snapshots_match_the_prefix_replay() {
    snapshots_match_prefix_replay(Parallelism::Threads(2), 500);
}

#[test]
fn auto_snapshots_match_the_prefix_replay() {
    snapshots_match_prefix_replay(Parallelism::Auto, 997);
}
