//! Robustness of the TCP transport over a loopback socket — the networked
//! mirror of `tests/ingest_protocol.rs`: truncated, oversized, and garbage
//! frames; connections dropped mid-burst; zero-length bursts; `Reshard`
//! frames interleaved with flushes; and slow, byte-at-a-time clients. The
//! engine behind the channel must stay deterministic and the server must
//! contain every failure to the connection that caused it.

use satn_core::AlgorithmKind;
use satn_serve::{
    ingest_channel, serve_connections, HandoverMode, Ingest, IngestMessage, IngestQueue,
    IngestSender, Parallelism, ReshardPlan, ServeError, ShardedEngine, ShardedEngineConfig,
    ShardedScenario, TcpIngest, MAX_FRAME_BODY,
};
use satn_sim::WorkloadSpec;
use satn_tree::ElementId;
use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};

fn scenario(requests: usize) -> ShardedScenario {
    ShardedScenario::new(
        AlgorithmKind::RotorPush,
        WorkloadSpec::Zipf { a: 1.7 },
        3,
        5,
        requests,
        99,
    )
}

fn engine(scenario: &ShardedScenario, parallelism: Parallelism) -> ShardedEngine {
    ShardedEngineConfig::from_scenario(scenario)
        .parallelism(parallelism)
        .build()
        .unwrap()
}

fn loopback() -> (TcpListener, SocketAddr) {
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    (listener, addr)
}

/// Spawns a single-connection server over a fresh channel and hands back the
/// queue plus the server's join handle.
fn single_connection_server(
    listener: TcpListener,
    capacity: usize,
) -> (
    IngestQueue,
    std::thread::JoinHandle<Vec<satn_serve::ConnectionReport>>,
) {
    let (sender, queue) = ingest_channel(capacity);
    let server = std::thread::spawn(move || {
        serve_connections(&listener, &sender, None, Parallelism::Serial, 1).unwrap()
    });
    (queue, server)
}

/// Drains a queue on a helper thread so servers never block on a full
/// channel while a test is inspecting connection reports.
fn drain_in_background(queue: IngestQueue) -> std::thread::JoinHandle<Vec<IngestMessage>> {
    std::thread::spawn(move || {
        let mut messages = Vec::new();
        while let Some(message) = queue.recv() {
            messages.push(message);
        }
        messages
    })
}

/// A connection cut mid-frame (half a header, then half a body) is reported
/// as a disconnect on that connection; everything already acknowledged is in
/// the queue.
#[test]
fn connections_dropped_mid_frame_are_contained_disconnects() {
    let (listener, addr) = loopback();
    let (queue, server) = single_connection_server(listener, 64);
    let drainer = drain_in_background(queue);

    let mut raw = TcpStream::connect(addr).unwrap();
    // One complete Request frame: length=5, tag=0, element=9.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&5u32.to_le_bytes());
    bytes.push(0);
    bytes.extend_from_slice(&9u32.to_le_bytes());
    // Then a truncated one: a full header promising 5 bytes, but only 2 sent.
    bytes.extend_from_slice(&5u32.to_le_bytes());
    bytes.extend_from_slice(&[0, 9]);
    raw.write_all(&bytes).unwrap();
    drop(raw); // Vanish mid-body.

    let reports = server.join().unwrap();
    assert_eq!(reports[0].frames, 1);
    let error = reports[0].error.as_ref().expect("the cut must be reported");
    assert!(error.is_disconnect(), "unexpected error: {error}");
    assert_eq!(
        drainer.join().unwrap(),
        vec![IngestMessage::Request(ElementId::new(9))]
    );
}

/// An oversized length prefix is rejected before any allocation and closes
/// only that connection with a protocol error.
#[test]
fn oversized_frames_are_rejected_as_protocol_errors() {
    let (listener, addr) = loopback();
    let (queue, server) = single_connection_server(listener, 4);
    let drainer = drain_in_background(queue);

    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&(MAX_FRAME_BODY + 1).to_le_bytes()).unwrap();
    let reports = server.join().unwrap();
    let error = reports[0].error.as_ref().expect("oversize must be fatal");
    assert!(
        matches!(error, ServeError::Protocol(_)),
        "unexpected error: {error}"
    );
    assert!(error.to_string().contains("exceeds"));
    // The server closed the socket: further writes eventually fail.
    let gone = (0..1_000).any(|_| {
        std::thread::sleep(std::time::Duration::from_millis(1));
        raw.write_all(&[0u8; 64]).is_err()
    });
    assert!(gone, "the server left a poisoned connection open");
    assert!(drainer.join().unwrap().is_empty());
}

/// Garbage bodies — unknown tags, truncated payloads, trailing bytes — are
/// protocol errors, and nothing from the bad frame reaches the engine.
#[test]
fn garbage_frames_are_protocol_errors() {
    for body in [
        vec![42u8],                      // unknown tag
        vec![1, 3, 0, 0, 0, 7, 0, 0, 0], // burst promising 3 elements, carrying 1
        vec![2, 0xFF],                   // flush with trailing bytes
        vec![],                          // empty body (no tag at all)
    ] {
        let (listener, addr) = loopback();
        let (queue, server) = single_connection_server(listener, 4);
        let drainer = drain_in_background(queue);
        let mut raw = TcpStream::connect(addr).unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&body);
        raw.write_all(&bytes).unwrap();
        raw.shutdown(std::net::Shutdown::Write).unwrap();
        let reports = server.join().unwrap();
        assert_eq!(reports[0].frames, 0, "body {body:?} must not be accepted");
        assert!(
            matches!(
                reports[0].error.as_ref(),
                Some(ServeError::Protocol(_)) | Some(ServeError::Closed)
            ),
            "body {body:?}: unexpected outcome {:?}",
            reports[0].error
        );
        assert!(drainer.join().unwrap().is_empty());
    }
}

/// A zero-length burst is valid protocol: it crosses the wire, is
/// acknowledged, and the engine treats it as a no-op.
#[test]
fn zero_length_bursts_are_acknowledged_noops() {
    let scenario = scenario(600);
    let requests: Vec<ElementId> = scenario.stream().collect();
    let (listener, addr) = loopback();
    let (sender, queue) = ingest_channel(8);
    let server = std::thread::spawn(move || {
        serve_connections(&listener, &sender, None, Parallelism::Serial, 1).unwrap()
    });
    let mut engine = engine(&scenario, Parallelism::Serial);
    let engine_thread = std::thread::spawn(move || {
        engine.serve_queue(&queue).unwrap();
        engine.finish().unwrap()
    });

    let mut client = TcpIngest::connect(addr).unwrap();
    client.send_burst(&[]).unwrap();
    client.send_burst(&requests).unwrap();
    client.send_burst(&[]).unwrap();
    assert_eq!(client.finish().unwrap(), 3);
    assert!(server.join().unwrap()[0].is_clean());
    let report = engine_thread.join().unwrap();
    assert_eq!(report.requests, 600);

    let mut direct = self::engine(&scenario, Parallelism::Serial);
    direct.submit_burst(&requests).unwrap();
    let direct = direct.finish().unwrap();
    assert_eq!(report.per_shard, direct.per_shard);
}

/// `Reshard` frames interleaved with flushes over TCP match the same
/// schedule executed in process — the wire adds nothing and loses nothing.
#[test]
fn reshard_frames_interleave_with_flushes_over_the_wire() {
    let scenario = scenario(1_800);
    let requests: Vec<ElementId> = scenario.stream().collect();
    let plan = ReshardPlan::new([(ElementId::new(0), 1), (ElementId::new(3), 2)]);

    let (listener, addr) = loopback();
    let (sender, queue) = ingest_channel(4);
    let server = std::thread::spawn(move || {
        serve_connections(&listener, &sender, None, Parallelism::Serial, 1).unwrap()
    });
    let mut engine = engine(&scenario, Parallelism::Threads(2));
    let engine_thread = std::thread::spawn(move || {
        engine.serve_queue(&queue).unwrap();
        engine.finish().unwrap()
    });

    let mut client = TcpIngest::connect(addr).unwrap();
    client.send_burst(&requests[..900]).unwrap();
    client.flush().unwrap();
    client.reshard(&plan, HandoverMode::Warm).unwrap();
    client.flush().unwrap();
    client.send_burst(&requests[900..]).unwrap();
    client.finish().unwrap();
    assert!(server.join().unwrap()[0].is_clean());
    let over_wire = engine_thread.join().unwrap();

    let mut direct = self::engine(&scenario, Parallelism::Threads(2));
    direct.submit_burst(&requests[..900]).unwrap();
    direct.reshard_with(plan, HandoverMode::Warm).unwrap();
    direct.submit_burst(&requests[900..]).unwrap();
    let direct = direct.finish().unwrap();

    assert_eq!(over_wire.boundaries, vec![900]);
    assert_eq!(over_wire.per_shard, direct.per_shard);
    assert_eq!(over_wire.accounting, direct.accounting);
    assert_eq!(over_wire.epoch_fingerprints, direct.epoch_fingerprints);
}

/// A slow client dribbling a frame one byte at a time is merely slow, not
/// broken: the server waits for the full frame and serves it normally.
#[test]
fn byte_at_a_time_clients_are_served_normally() {
    let (listener, addr) = loopback();
    let (queue, server) = single_connection_server(listener, 8);

    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_nodelay(true).unwrap();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&13u32.to_le_bytes());
    bytes.push(1); // burst tag
    bytes.extend_from_slice(&2u32.to_le_bytes());
    bytes.extend_from_slice(&5u32.to_le_bytes());
    bytes.extend_from_slice(&6u32.to_le_bytes());
    for byte in bytes {
        raw.write_all(&[byte]).unwrap();
        raw.flush().unwrap();
    }
    // The ack comes back once the whole frame has dribbled in.
    let mut ack = [0u8; 13];
    raw.read_exact(&mut ack).unwrap();
    assert_eq!(
        queue.recv(),
        Some(IngestMessage::Burst(vec![
            ElementId::new(5),
            ElementId::new(6)
        ]))
    );
    raw.shutdown(std::net::Shutdown::Write).unwrap();
    let reports = server.join().unwrap();
    assert!(reports[0].is_clean());
    assert_eq!(reports[0].frames, 1);
}

/// One misbehaving connection never poisons its neighbours: with several
/// concurrent connections, the garbage one dies alone and the clean ones run
/// the full protocol.
#[test]
fn failures_are_isolated_per_connection() {
    let (listener, addr) = loopback();
    let (sender, queue) = ingest_channel(64);
    let server = std::thread::spawn(move || {
        serve_connections(&listener, &sender, None, Parallelism::Threads(3), 3).unwrap()
    });
    let drainer = drain_in_background(queue);

    let clean = |offset: u32| {
        let mut client = TcpIngest::connect(addr).unwrap();
        let burst: Vec<ElementId> = (offset..offset + 10).map(ElementId::new).collect();
        client.send_burst(&burst).unwrap();
        client.finish().unwrap()
    };
    assert_eq!(clean(0), 1);
    let mut garbage = TcpStream::connect(addr).unwrap();
    garbage.write_all(&2u32.to_le_bytes()).unwrap();
    garbage.write_all(&[99, 99]).unwrap(); // unknown tag
    garbage.shutdown(std::net::Shutdown::Write).unwrap();
    assert_eq!(clean(100), 1);

    let reports = server.join().unwrap();
    let clean_count = reports.iter().filter(|r| r.is_clean()).count();
    assert_eq!(clean_count, 2);
    let failed: Vec<_> = reports.iter().filter(|r| !r.is_clean()).collect();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].frames, 0);
    assert_eq!(drainer.join().unwrap().len(), 2);
}

/// The channel transport and the TCP transport are interchangeable behind
/// the `Ingest` trait: the generic replay driver in `satn_serve::replay`
/// produces identical queue contents through either.
#[test]
fn both_transports_feed_the_queue_identically() {
    let elements: Vec<ElementId> = (0..100).map(ElementId::new).collect();

    let (mut sender, queue) = ingest_channel(64);
    satn_serve::replay(&mut sender, elements.iter().copied(), 7).unwrap();
    drop(sender);
    let mut in_process = Vec::new();
    while let Some(message) = queue.recv() {
        in_process.push(message);
    }

    let (listener, addr) = loopback();
    let (queue, server) = single_connection_server(listener, 64);
    let mut client = TcpIngest::connect(addr).unwrap();
    satn_serve::replay(&mut client, elements.iter().copied(), 7).unwrap();
    client.finish().unwrap();
    server.join().unwrap();
    let mut over_wire = Vec::new();
    while let Some(message) = queue.recv() {
        over_wire.push(message);
    }

    assert_eq!(in_process, over_wire);
}

/// The read phase end to end: a `TcpIngest` client interleaves `Lookup`
/// frames with pipelined writes, and every `Found` answer — whatever
/// snapshot the server happened to hold when it arrived — names exactly
/// the node the serial prefix replay puts that element at, at the
/// checkpoint the answer is stamped with.
#[test]
fn lookups_are_served_end_to_end_from_published_snapshots() {
    let scenario = scenario(1_200);
    let requests: Vec<ElementId> = scenario.stream().collect();
    let (listener, addr) = loopback();
    let (sender, queue) = ingest_channel(8);
    let mut engine = ShardedEngineConfig::from_scenario(&scenario)
        .parallelism(Parallelism::Threads(2))
        .drain_threshold(300)
        .build()
        .unwrap();
    let reader = engine.snapshots();
    let server = std::thread::spawn(move || {
        serve_connections(&listener, &sender, Some(&reader), Parallelism::Serial, 1).unwrap()
    });
    let engine_thread = std::thread::spawn(move || {
        engine.serve_queue(&queue).unwrap();
        engine.finish().unwrap()
    });

    let mut client = TcpIngest::connect(addr).unwrap();
    let mut answers = Vec::new();
    // A lookup before any write is answered from the initial snapshot.
    answers.push(client.lookup(ElementId::new(5)).unwrap());
    for (chunk, probe) in requests.chunks(300).zip([2u32, 9, 17, 23]) {
        client.send_burst(chunk).unwrap();
        client.flush().unwrap();
        answers.push(client.lookup(ElementId::new(probe)).unwrap());
    }
    client.finish().unwrap();
    assert!(server.join().unwrap()[0].is_clean());
    let report = engine_thread.join().unwrap();
    assert_eq!(report.requests, 1_200);

    // Answers come back in request order from monotonically advancing
    // snapshots; each one matches the serial replay of its own prefix.
    let runner = satn_sim::SimRunner::new();
    let partition = scenario.partition();
    for pair in answers.windows(2) {
        assert!(pair[0].served <= pair[1].served);
    }
    for answer in answers {
        let reference = scenario
            .prefix_fingerprints(&runner, answer.served as usize)
            .unwrap();
        let (shard, local) = partition.localize(answer.element).unwrap();
        assert_eq!(shard, answer.shard);
        let occupancy =
            satn_tree::snapshot::occupancy_from_str(&reference[shard as usize]).unwrap();
        assert_eq!(occupancy.node_of(local), answer.node);
        assert_eq!(answer.epoch, 0);
    }
}

/// `IngestSender` is still exported and still the channel producer — the
/// trait did not change the in-process API surface.
#[test]
fn the_channel_sender_still_works_through_the_trait_object() {
    let (mut sender, queue) = ingest_channel(4);
    let ingest: &mut dyn Ingest = &mut sender;
    ingest.send(ElementId::new(1)).unwrap();
    drop(sender);
    assert_eq!(
        queue.recv(),
        Some(IngestMessage::Request(ElementId::new(1)))
    );
    let _: Option<IngestSender> = None; // the type stays nameable
}
