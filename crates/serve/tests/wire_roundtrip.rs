//! Round-trip property for the wire codec: `decode_body(encode_frame(f)) ==
//! f` for arbitrary protocol frames, including `Reshard` frames carrying
//! full [`ReshardPlan`] payloads. The codec is canonical (one encoding per
//! frame), so the inverse direction — re-encoding a decoded frame
//! reproduces the original bytes — is asserted too.

use proptest::prelude::*;
use satn_serve::{
    decode_body, encode_frame, EngineMetrics, Frame, HandoverMode, IngestMessage, LookupAnswer,
    MetricsSnapshot, ReshardPlan,
};
use satn_tree::{ElementId, NodeId};
use std::time::Duration;

/// Encodes `frame`, strips the length prefix, and decodes the body back.
fn roundtrip(frame: &Frame) -> Frame {
    let mut bytes = Vec::new();
    encode_frame(frame, &mut bytes).expect("roundtrip frames fit the cap");
    let (prefix, body) = bytes.split_at(4);
    assert_eq!(
        u32::from_le_bytes(prefix.try_into().unwrap()) as usize,
        body.len(),
        "the length prefix must describe the body exactly"
    );
    let decoded = decode_body(body).expect("a canonical encoding always decodes");

    // Canonicality: re-encoding the decoded frame reproduces the bytes.
    let mut reencoded = Vec::new();
    encode_frame(&decoded, &mut reencoded).expect("roundtrip frames fit the cap");
    assert_eq!(reencoded, bytes, "the codec must be canonical");
    decoded
}

/// Builds a `Reshard` frame from raw `(element, shard)` pairs, deduplicating
/// elements the same way a well-formed producer would.
fn reshard_frame(moves: &[(u32, u32)], mode: HandoverMode) -> Frame {
    let mut seen = std::collections::BTreeMap::new();
    for &(element, shard) in moves {
        seen.insert(ElementId::new(element), shard % 64);
    }
    Frame::Ingest(IngestMessage::Reshard(ReshardPlan::new(seen), mode))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_frames_roundtrip(element in 0u32..2_000_000) {
        let frame = Frame::Ingest(IngestMessage::Request(ElementId::new(element)));
        prop_assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn burst_frames_roundtrip(elements in proptest::collection::vec(0u32..1_000_000, 0..200)) {
        let burst: Vec<ElementId> = elements.iter().copied().map(ElementId::new).collect();
        let frame = Frame::Ingest(IngestMessage::Burst(burst));
        prop_assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn reshard_frames_roundtrip(
        moves in proptest::collection::vec((0u32..10_000, 0u32..1_000), 0..64),
        warm in any::<bool>(),
    ) {
        let mode = if warm { HandoverMode::Warm } else { HandoverMode::Cold };
        let frame = reshard_frame(&moves, mode);
        prop_assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn ack_frames_roundtrip(seq in 0u64..u64::MAX) {
        let frame = Frame::Ack { seq };
        prop_assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn lookup_frames_roundtrip(element in 0u32..2_000_000) {
        let frame = Frame::Lookup { element: ElementId::new(element) };
        prop_assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn found_frames_roundtrip(
        element in 0u32..2_000_000,
        shard in 0u32..1_024,
        node in 0u32..1_000_000,
        epoch in 0u32..10_000,
        served in 0u64..u64::MAX,
    ) {
        let frame = Frame::Found(LookupAnswer {
            element: ElementId::new(element),
            shard,
            node: NodeId::new(node),
            epoch,
            served,
        });
        prop_assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn stats_reply_frames_roundtrip(
        shards in 1u32..9,
        served in 0u64..1_000_000,
        depth in 0u64..1_000,
        samples in proptest::collection::vec(0u64..1 << 42, 0..32),
    ) {
        // A live registry with traffic on every section of the encoding:
        // counters, gauges, per-shard gauges, and a sparse histogram.
        let metrics = EngineMetrics::new(shards);
        metrics.requests_served.add(served);
        metrics.ingest_queue_depth.set(depth);
        metrics.shard_buffered[(shards - 1) as usize].set(depth / 2);
        for &nanos in &samples {
            metrics.drain_latency.record(Duration::from_nanos(nanos));
        }
        let frame = Frame::StatsReply(metrics.snapshot());
        prop_assert_eq!(roundtrip(&frame), frame);
    }
}

#[test]
fn stats_frames_roundtrip() {
    let frame = Frame::Stats;
    assert_eq!(roundtrip(&frame), frame);
    let frame = Frame::StatsReply(MetricsSnapshot::default());
    assert_eq!(roundtrip(&frame), frame);
}

#[test]
fn flush_frames_roundtrip() {
    let frame = Frame::Ingest(IngestMessage::Flush);
    assert_eq!(roundtrip(&frame), frame);
}

#[test]
fn the_empty_reshard_plan_roundtrips() {
    for mode in [HandoverMode::Cold, HandoverMode::Warm] {
        let frame = Frame::Ingest(IngestMessage::Reshard(ReshardPlan::empty(), mode));
        assert_eq!(roundtrip(&frame), frame);
    }
}
