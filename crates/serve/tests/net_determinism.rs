//! The networked determinism oracle — the PR's acceptance criterion: a
//! [`ShardedScenario`] replayed through the TCP front door (client →
//! loopback socket → accept loop → bounded channel → engine) produces
//! **byte-identical** engine reports — per-epoch fingerprints, per-epoch
//! cost sub-summaries, migration ledger — to the same scenario driven
//! through the in-process [`Ingest`] transport, at serial, 2-thread, and
//! auto parallelism, and both match the epoch-segmented serial reference
//! replay ([`ShardedScenario::epoch_replay`]).

use satn_core::AlgorithmKind;
use satn_serve::{
    ingest_channel, replay, serve_connections, EngineReport, Parallelism, ReshardPolicy,
    ReshardSchedule, ShardedEngineConfig, ShardedScenario, TcpIngest,
};
use satn_sim::{ShardRouter, SimRunner, WorkloadSpec};
use satn_tree::ElementId;
use std::net::{Ipv4Addr, TcpListener};

fn resharding_scenario() -> ShardedScenario {
    let mut scenario = ShardedScenario::new(
        AlgorithmKind::RotorPush,
        WorkloadSpec::Combined { a: 1.9, p: 0.75 },
        4,
        6,
        12_000,
        2022,
    );
    scenario.router = ShardRouter::Hash;
    scenario.reshard = ReshardSchedule::Policy(ReshardPolicy::MoveHottest {
        every: 2_000,
        max_moves: 16,
    });
    scenario
}

/// Drives `scenario` through the engine via the in-process channel
/// transport.
fn run_in_process(scenario: &ShardedScenario, parallelism: Parallelism) -> EngineReport {
    let mut engine = ShardedEngineConfig::from_scenario(scenario)
        .parallelism(parallelism)
        .drain_threshold(512)
        .build()
        .unwrap();
    let (mut sender, queue) = ingest_channel(16);
    let requests: Vec<ElementId> = scenario.stream().collect();
    let producer = std::thread::spawn(move || {
        replay(&mut sender, requests, 256).unwrap();
    });
    engine.serve_queue(&queue).unwrap();
    producer.join().unwrap();
    engine.finish().unwrap()
}

/// Drives `scenario` through the engine via a real loopback TCP connection:
/// the exact path `satnd` + the load generator exercise.
fn run_over_tcp(scenario: &ShardedScenario, parallelism: Parallelism) -> EngineReport {
    let mut engine = ShardedEngineConfig::from_scenario(scenario)
        .parallelism(parallelism)
        .drain_threshold(512)
        .build()
        .unwrap();
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let (sender, queue) = ingest_channel(16);
    let server = std::thread::spawn(move || {
        serve_connections(&listener, &sender, None, Parallelism::Serial, 1).unwrap()
    });
    let requests: Vec<ElementId> = scenario.stream().collect();
    let client = std::thread::spawn(move || {
        let mut client = TcpIngest::connect(addr).unwrap();
        replay(&mut client, requests, 256).unwrap();
        client.finish().unwrap()
    });
    engine.serve_queue(&queue).unwrap();
    let acked = client.join().unwrap();
    assert!(acked > 0);
    let reports = server.join().unwrap();
    assert!(reports[0].is_clean(), "{:?}", reports[0].error);
    engine.finish().unwrap()
}

/// The acceptance criterion, including mid-stream resharding: TCP and
/// in-process runs are byte-identical to each other at every thread count,
/// and all of them match the serial epoch replay.
#[test]
fn tcp_and_in_process_runs_are_byte_identical() {
    let scenario = resharding_scenario();
    let reference = scenario.epoch_replay(&SimRunner::new()).unwrap();

    let baseline = run_in_process(&scenario, Parallelism::Serial);
    assert!(
        baseline.epoch_fingerprints.len() > 1,
        "resharding must fire"
    );
    baseline.verify_against(&reference).unwrap();

    for parallelism in [
        Parallelism::Serial,
        Parallelism::Threads(2),
        Parallelism::Auto,
    ] {
        let over_wire = run_over_tcp(&scenario, parallelism);
        assert_eq!(over_wire, baseline, "{parallelism:?} diverged over TCP");
        over_wire.verify_against(&reference).unwrap();
        if parallelism != Parallelism::Serial {
            let in_process = run_in_process(&scenario, parallelism);
            assert_eq!(in_process, baseline, "{parallelism:?} diverged in process");
        }
    }
}

/// The same oracle without resharding, across router policies: the wire is
/// invisible to the engine regardless of how requests are routed to shards.
#[test]
fn every_router_policy_is_wire_transparent() {
    for router in ShardRouter::ALL {
        let mut scenario = ShardedScenario::new(
            AlgorithmKind::MaxPush,
            WorkloadSpec::Zipf { a: 1.5 },
            3,
            5,
            4_000,
            7,
        );
        scenario.router = router;
        let in_process = run_in_process(&scenario, Parallelism::Threads(2));
        let over_wire = run_over_tcp(&scenario, Parallelism::Threads(2));
        assert_eq!(in_process, over_wire, "{router} diverged over TCP");
    }
}
