//! The deterministic-metrics oracle: every counter the engine updates at
//! drain boundaries must equal the corresponding serial-replay total — the
//! `satn-obs` registry is an `AtomicU64` restatement of the replay ledger,
//! never an approximation of it.
//!
//! * Counters vs the [`EngineReport`] and the epoch-segmented reference
//!   replay, at serial / 2 / auto thread counts, with resharding on.
//! * The tracer's deterministic stamps (kind, epoch, served, detail) are
//!   bit-identical across thread counts; only the advisory wall clock may
//!   differ.
//! * A `MetricsSnapshot` taken at the final drain boundary survives the
//!   wire codec and still answers by metric name.

use satn_core::AlgorithmKind;
use satn_obs::names;
use satn_serve::{
    ingest_channel_with_metrics, EngineMetrics, EngineReport, Parallelism, ReshardPolicy,
    ReshardSchedule, ShardedEngineConfig, ShardedScenario, TraceKind, TraceStamp,
};
use satn_sim::{ShardRouter, SimRunner, WorkloadSpec};
use std::sync::Arc;

fn reshard_scenario() -> ShardedScenario {
    let mut scenario = ShardedScenario::new(
        AlgorithmKind::RotorPush,
        WorkloadSpec::Combined { a: 1.9, p: 0.75 },
        4,
        5,
        6_000,
        2022,
    );
    scenario.router = ShardRouter::Hash;
    scenario.reshard = ReshardSchedule::Policy(ReshardPolicy::MoveHottest {
        every: 1_500,
        max_moves: 8,
    });
    scenario
}

/// Drives `scenario` through a metered ingest channel at `parallelism` and
/// returns the registry, the tracer's deterministic stamps, and the report.
fn run_metered(
    scenario: &ShardedScenario,
    parallelism: Parallelism,
) -> (Arc<EngineMetrics>, Vec<TraceStamp>, EngineReport) {
    let mut engine = ShardedEngineConfig::from_scenario(scenario)
        .parallelism(parallelism)
        .drain_threshold(512)
        .build()
        .unwrap();
    let metrics = Arc::clone(engine.metrics());
    let tracer = Arc::clone(engine.tracer());
    let (sender, queue) = ingest_channel_with_metrics(8, Arc::clone(&metrics));
    let requests: Vec<_> = scenario.stream().collect();
    let producer = std::thread::spawn(move || {
        for chunk in requests.chunks(97) {
            sender.send_burst(chunk.to_vec()).unwrap();
        }
    });
    engine.serve_queue(&queue).unwrap();
    producer.join().unwrap();
    let report = engine.finish().unwrap();
    (metrics, tracer.stamps(), report)
}

/// The oracle proper: at a drain boundary (and `finish` ends on one) every
/// deterministic counter in the registry equals its report total exactly.
fn assert_counters_equal_report(metrics: &EngineMetrics, report: &EngineReport) {
    let serving = report.merged.total();
    assert_eq!(metrics.requests_served.get(), report.requests);
    assert_eq!(metrics.batches_drained.get(), report.drains);
    assert_eq!(metrics.access_cost.get(), serving.access);
    assert_eq!(metrics.adjustment_cost.get(), serving.adjustment);
    assert_eq!(metrics.migration_units.get(), report.migration.total());
    assert_eq!(
        metrics.reshard_epoch.get(),
        report.epoch_fingerprints.len() as u64 - 1,
    );
    // The stream is fully drained: no queue depth, no buffered requests.
    assert_eq!(metrics.ingest_queue_depth.get(), 0);
    for gauge in &metrics.shard_buffered {
        assert_eq!(gauge.get(), 0);
    }
}

#[test]
fn counters_equal_replay_totals_at_every_thread_count() {
    let scenario = reshard_scenario();
    let reference = scenario.epoch_replay(&SimRunner::new()).unwrap();
    let mut baseline = None;
    for parallelism in [
        Parallelism::Serial,
        Parallelism::Threads(2),
        Parallelism::Auto,
    ] {
        let (metrics, stamps, report) = run_metered(&scenario, parallelism);
        // The report itself matches the serial reference replay...
        report.verify_against(&reference).unwrap();
        // ...and the registry matches the report, counter for counter, so
        // transitively every counter equals its serial-replay total.
        assert_counters_equal_report(&metrics, &report);
        // The same numbers answer by name through the snapshot codec.
        let snapshot = metrics.snapshot();
        assert_eq!(
            snapshot.counter(names::REQUESTS_SERVED),
            Some(report.requests)
        );
        assert_eq!(
            snapshot.counter(names::BATCHES_DRAINED),
            Some(report.drains)
        );
        assert_eq!(
            snapshot.gauge(names::RESHARD_EPOCH),
            Some(report.epoch_fingerprints.len() as u64 - 1)
        );
        let drain = snapshot.histogram(names::DRAIN_LATENCY).unwrap();
        assert_eq!(
            drain.samples(),
            report.drains,
            "one latency sample per drain (advisory values, deterministic count)"
        );
        match &baseline {
            None => baseline = Some((stamps, report)),
            Some((reference_stamps, reference_report)) => {
                assert_eq!(
                    &stamps, reference_stamps,
                    "tracer stamps must be bit-identical across thread counts"
                );
                assert_eq!(&report, reference_report);
            }
        }
    }
}

#[test]
fn tracer_spans_record_the_three_phase_handover() {
    let scenario = reshard_scenario();
    let (_metrics, stamps, report) = run_metered(&scenario, Parallelism::Threads(2));
    let epochs = report.epoch_fingerprints.len() as u64 - 1;
    assert!(epochs >= 1, "the scenario must actually reshard");
    // Every handover appears as fence → migrate → epoch-bump, in order,
    // with the migrate and bump stamped under the new epoch.
    let handovers: Vec<_> = stamps
        .iter()
        .filter(|stamp| {
            matches!(
                stamp.kind,
                TraceKind::ReshardFence | TraceKind::ReshardMigrate | TraceKind::ReshardEpochBump
            )
        })
        .collect();
    assert_eq!(handovers.len() as u64, 3 * epochs);
    for (index, span) in handovers.chunks(3).enumerate() {
        let epoch = index as u32;
        assert_eq!(span[0].kind, TraceKind::ReshardFence);
        assert_eq!(span[0].epoch, epoch, "the fence closes the old epoch");
        assert_eq!(span[1].kind, TraceKind::ReshardMigrate);
        assert_eq!(span[1].epoch, epoch + 1);
        assert_eq!(span[2].kind, TraceKind::ReshardEpochBump);
        assert_eq!(span[2].epoch, epoch + 1);
        assert_eq!(
            span[0].served, span[1].served,
            "the whole span happens at one fenced stream position"
        );
        assert_eq!(span[1].served, span[2].served);
    }
    // Drain events account for every request exactly once.
    let drained: u64 = stamps
        .iter()
        .filter(|stamp| stamp.kind == TraceKind::Drain)
        .map(|stamp| stamp.detail)
        .sum();
    assert_eq!(drained, report.requests);
    // And the final drain's running total is the report's.
    let last = stamps
        .iter()
        .rev()
        .find(|stamp| stamp.kind == TraceKind::Drain)
        .unwrap();
    assert_eq!(last.served, report.requests);
}

#[test]
fn the_wire_codec_preserves_the_oracle_snapshot() {
    let scenario = reshard_scenario();
    let (metrics, _stamps, report) = run_metered(&scenario, Parallelism::Auto);
    let snapshot = metrics.snapshot();
    let mut encoded = Vec::new();
    snapshot.encode_into(&mut encoded);
    let decoded = satn_serve::MetricsSnapshot::decode(&encoded).unwrap();
    assert_eq!(decoded, snapshot);
    assert_eq!(
        decoded.counter(names::REQUESTS_SERVED),
        Some(report.requests)
    );
    assert_eq!(
        decoded.counter(names::MIGRATION_UNITS),
        Some(report.migration.total())
    );
    // The Prometheus dump names every deterministic counter.
    let text = decoded.to_prometheus();
    for name in [
        names::REQUESTS_SERVED,
        names::BATCHES_DRAINED,
        names::ACCESS_COST,
        names::ADJUSTMENT_COST,
        names::MIGRATION_UNITS,
        names::RESHARD_EPOCH,
    ] {
        assert!(text.contains(name), "prometheus dump is missing {name}");
    }
}
