//! Channel-based request ingestion: a bounded MPSC front door for the
//! serving engines.
//!
//! Producers (workload generators, sockets, test threads) hold cloneable
//! [`IngestSender`]s and push requests or request bursts; the engine owns the
//! single [`IngestQueue`] consumer and serves messages in arrival order. The
//! channel is **bounded**, so a producer that outruns the engine blocks on
//! [`IngestSender::send_burst`] — backpressure instead of unbounded memory.
//!
//! The drain/flush protocol: a [`IngestSender::flush`] message forces the
//! engine to drain every pending per-shard batch before reading further
//! input; dropping all senders closes the queue, upon which the engine
//! drains once more and returns. Determinism: the per-shard request order is
//! the queue arrival order, so a single producer (or any externally ordered
//! producer set) yields bit-identical replays at every thread count.

use satn_tree::ElementId;
use satn_workloads::shard::ReshardPlan;
use std::fmt;
use std::sync::mpsc;

/// One message of the ingestion protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestMessage {
    /// A single request (no per-message heap allocation on the producer).
    Request(ElementId),
    /// A burst of requests to route and enqueue in burst order.
    Burst(Vec<ElementId>),
    /// Force a drain of all pending per-shard batches before continuing.
    Flush,
    /// A reshard control frame: the engine performs the full deterministic
    /// handover — drain fence, element migration, epoch bump — before
    /// reading further input, so resharding composes with in-flight bursts
    /// exactly like a flush does.
    Reshard(ReshardPlan),
}

/// Error returned when sending into a queue whose consumer is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestClosed;

impl fmt::Display for IngestClosed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("the ingest queue consumer is gone")
    }
}

impl std::error::Error for IngestClosed {}

/// The producer half: cloneable, blocking on a full queue (backpressure).
#[derive(Debug, Clone)]
pub struct IngestSender {
    inner: mpsc::SyncSender<IngestMessage>,
}

impl IngestSender {
    /// Enqueues a single request (allocation-free on the producer side).
    ///
    /// # Errors
    ///
    /// Returns [`IngestClosed`] if the consumer has been dropped.
    pub fn send(&self, element: ElementId) -> Result<(), IngestClosed> {
        self.inner
            .send(IngestMessage::Request(element))
            .map_err(|_| IngestClosed)
    }

    /// Enqueues a burst of requests (served in burst order), blocking while
    /// the queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`IngestClosed`] if the consumer has been dropped.
    pub fn send_burst(&self, burst: Vec<ElementId>) -> Result<(), IngestClosed> {
        self.inner
            .send(IngestMessage::Burst(burst))
            .map_err(|_| IngestClosed)
    }

    /// Asks the engine to drain all pending per-shard batches before reading
    /// further input.
    ///
    /// # Errors
    ///
    /// Returns [`IngestClosed`] if the consumer has been dropped.
    pub fn flush(&self) -> Result<(), IngestClosed> {
        self.inner
            .send(IngestMessage::Flush)
            .map_err(|_| IngestClosed)
    }

    /// Asks the engine to reshard: every request enqueued before this frame
    /// is served under the old epoch (the handover starts with a drain
    /// fence), every request after it under the new one.
    ///
    /// # Errors
    ///
    /// Returns [`IngestClosed`] if the consumer has been dropped.
    pub fn reshard(&self, plan: ReshardPlan) -> Result<(), IngestClosed> {
        self.inner
            .send(IngestMessage::Reshard(plan))
            .map_err(|_| IngestClosed)
    }
}

/// The consumer half, owned by the serving engine.
#[derive(Debug)]
pub struct IngestQueue {
    inner: mpsc::Receiver<IngestMessage>,
}

impl IngestQueue {
    /// Blocks for the next message; `None` once every sender is dropped and
    /// the queue is empty (the shutdown signal).
    pub fn recv(&self) -> Option<IngestMessage> {
        self.inner.recv().ok()
    }
}

/// Creates a bounded ingestion channel holding at most `capacity` queued
/// messages (bursts count as one message each).
///
/// # Panics
///
/// Panics if `capacity` is zero (a zero-capacity rendezvous channel would
/// deadlock single-threaded producers).
pub fn ingest_channel(capacity: usize) -> (IngestSender, IngestQueue) {
    assert!(capacity > 0, "the ingest queue capacity must be positive");
    let (sender, receiver) = mpsc::sync_channel(capacity);
    (
        IngestSender { inner: sender },
        IngestQueue { inner: receiver },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_arrive_in_send_order() {
        let (sender, queue) = ingest_channel(16);
        sender.send(ElementId::new(1)).unwrap();
        sender
            .send_burst(vec![ElementId::new(2), ElementId::new(3)])
            .unwrap();
        sender.flush().unwrap();
        drop(sender);
        assert_eq!(
            queue.recv(),
            Some(IngestMessage::Request(ElementId::new(1)))
        );
        assert_eq!(
            queue.recv(),
            Some(IngestMessage::Burst(vec![
                ElementId::new(2),
                ElementId::new(3)
            ]))
        );
        assert_eq!(queue.recv(), Some(IngestMessage::Flush));
        assert_eq!(queue.recv(), None);
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let (sender, queue) = ingest_channel(1);
        sender.send(ElementId::new(0)).unwrap();
        // The queue is full: a second send must block until the consumer
        // makes room. Run it on a helper thread and unblock it by receiving.
        let helper = std::thread::spawn(move || sender.send(ElementId::new(1)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(queue.recv().is_some());
        helper.join().unwrap().unwrap();
        assert_eq!(
            queue.recv(),
            Some(IngestMessage::Request(ElementId::new(1)))
        );
    }

    #[test]
    fn sending_into_a_dropped_queue_errors() {
        let (sender, queue) = ingest_channel(4);
        drop(queue);
        assert_eq!(sender.send(ElementId::new(0)), Err(IngestClosed));
        assert_eq!(sender.flush(), Err(IngestClosed));
        assert!(IngestClosed.to_string().contains("consumer"));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_capacity_is_rejected() {
        ingest_channel(0);
    }
}
