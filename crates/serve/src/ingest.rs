//! Transport-agnostic request ingestion: the [`Ingest`] trait and its
//! in-process channel implementation.
//!
//! Producers (workload generators, sockets, test threads) speak the
//! ingestion protocol through any [`Ingest`] implementor — the bounded MPSC
//! [`IngestSender`] here, or the TCP-backed [`TcpIngest`](crate::TcpIngest)
//! — and the engine owns the single [`IngestQueue`] consumer, serving
//! messages in arrival order. The channel is **bounded**, so a producer that
//! outruns the engine blocks on [`IngestSender::send_burst`] — backpressure
//! instead of unbounded memory. (The TCP transport inherits the same
//! property through the socket: the server forwards frames into this channel
//! and only acknowledges once they are enqueued.)
//!
//! The drain/flush protocol: a [`Ingest::flush`] message forces the engine
//! to drain every pending per-shard batch before reading further input;
//! dropping all senders closes the queue, upon which the engine drains once
//! more and returns. Determinism: the per-shard request order is the queue
//! arrival order, so a single producer (or any externally ordered producer
//! set) yields bit-identical replays at every thread count — over a channel
//! or over a wire.

use crate::error::ServeError;
use crate::snapshot::{LookupAnswer, SnapshotReader};
use satn_obs::{EngineMetrics, MetricsSnapshot};
use satn_tree::ElementId;
use satn_workloads::shard::{HandoverMode, ReshardPlan};
use std::sync::mpsc;
use std::sync::Arc;

/// One message of the ingestion protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestMessage {
    /// A single request (no per-message heap allocation on the producer).
    Request(ElementId),
    /// A burst of requests to route and enqueue in burst order.
    Burst(Vec<ElementId>),
    /// Force a drain of all pending per-shard batches before continuing.
    Flush,
    /// A reshard control frame: the engine performs the full deterministic
    /// handover — drain fence, element migration, epoch bump — before
    /// reading further input, so resharding composes with in-flight bursts
    /// exactly like a flush does. The [`HandoverMode`] selects cold
    /// (rebuild every shard tree fresh) or warm (carry exported
    /// rotor/recency state, leave untouched shards' trees alone).
    Reshard(ReshardPlan, HandoverMode),
}

/// The transport-agnostic producer half of the ingestion protocol.
///
/// Implementors carry the four protocol verbs over some transport: the
/// in-process [`IngestSender`] moves them through a bounded channel, the
/// network client [`TcpIngest`](crate::TcpIngest) encodes them as
/// length-prefixed wire frames. Code written against this trait — replay
/// drivers, smoke binaries, tests — runs identically against either, which
/// is what lets the epoch-replay oracle validate the networked engine.
///
/// All methods take `&mut self` so implementors may keep per-connection
/// state (write buffers, acknowledgement windows); the channel implementor
/// simply ignores the exclusivity.
pub trait Ingest {
    /// Submits a single request.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] if the consuming peer is gone; transport
    /// implementors may also surface [`ServeError::Io`] /
    /// [`ServeError::Protocol`].
    fn send(&mut self, element: ElementId) -> Result<(), ServeError>;

    /// Submits a burst of requests, served in burst order.
    ///
    /// # Errors
    ///
    /// Same contract as [`Ingest::send`].
    fn send_burst(&mut self, burst: &[ElementId]) -> Result<(), ServeError>;

    /// Forces the engine to drain all pending per-shard batches before
    /// reading further input.
    ///
    /// # Errors
    ///
    /// Same contract as [`Ingest::send`].
    fn flush(&mut self) -> Result<(), ServeError>;

    /// Requests a reshard in the given [`HandoverMode`]: every request
    /// submitted before this call is served under the old epoch, every
    /// request after it under the new one.
    ///
    /// # Errors
    ///
    /// Same contract as [`Ingest::send`].
    fn reshard(&mut self, plan: &ReshardPlan, mode: HandoverMode) -> Result<(), ServeError>;

    /// Looks up an element's current placement — the **read phase** of the
    /// protocol. Lookups never enter the write path: they are answered from
    /// the engine's most recently published snapshot (in-process via a
    /// [`SnapshotReader`], over the network via a `Lookup`/`Found` frame
    /// exchange), so they neither mutate the trees nor contend with the
    /// shard drain path.
    ///
    /// # Errors
    ///
    /// [`ServeError::LookupUnsupported`] if this handle has no read side
    /// attached, [`ServeError::OutOfUniverse`] for an element the engine
    /// does not hold, plus the transport errors of [`Ingest::send`].
    fn lookup(&mut self, element: ElementId) -> Result<LookupAnswer, ServeError>;

    /// Polls the engine's runtime metrics — the observability verb of the
    /// protocol. Like [`Ingest::lookup`] this never enters the write path:
    /// in-process it freezes the shared [`EngineMetrics`] registry, over the
    /// network it is a `Stats`/`StatsReply` frame exchange.
    ///
    /// # Errors
    ///
    /// [`ServeError::StatsUnsupported`] if this handle has no metrics
    /// registry attached, plus the transport errors of [`Ingest::send`].
    fn stats(&mut self) -> Result<MetricsSnapshot, ServeError>;
}

/// Replays a request stream through any [`Ingest`] transport in bursts of
/// `burst_size` (the common shape of every driver, smoke binary, and load
/// generator in the workspace). A `burst_size` of 1 degenerates to
/// per-request [`Ingest::send`] calls.
///
/// # Errors
///
/// Propagates the first transport error.
///
/// # Panics
///
/// Panics if `burst_size` is zero.
pub fn replay<I: Ingest + ?Sized>(
    ingest: &mut I,
    stream: impl IntoIterator<Item = ElementId>,
    burst_size: usize,
) -> Result<(), ServeError> {
    assert!(burst_size > 0, "the replay burst size must be positive");
    let mut burst = Vec::with_capacity(burst_size);
    for element in stream {
        burst.push(element);
        if burst.len() == burst_size {
            ingest.send_burst(&burst)?;
            burst.clear();
        }
    }
    if !burst.is_empty() {
        ingest.send_burst(&burst)?;
    }
    Ok(())
}

/// The in-process producer half: cloneable, blocking on a full queue
/// (backpressure).
///
/// A plain sender carries only the write verbs; attach a
/// [`SnapshotReader`] with [`IngestSender::with_snapshots`] to serve
/// [`Ingest::lookup`] as well (each clone of the sender gets its own
/// independently cached read handle).
#[derive(Debug, Clone)]
pub struct IngestSender {
    inner: mpsc::SyncSender<IngestMessage>,
    snapshots: Option<SnapshotReader>,
    metrics: Option<Arc<EngineMetrics>>,
}

impl IngestSender {
    /// Attaches the read side: lookups on the returned sender are answered
    /// lock-free from the engine's published snapshots.
    #[must_use]
    pub fn with_snapshots(mut self, reader: SnapshotReader) -> Self {
        self.snapshots = Some(reader);
        self
    }

    /// The attached metrics registry, if the channel was built with
    /// [`ingest_channel_with_metrics`]. The network layer uses this to reach
    /// the engine's registry through the sender it already holds.
    pub fn metrics(&self) -> Option<&Arc<EngineMetrics>> {
        self.metrics.as_ref()
    }

    /// Enqueues one protocol message, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] if the consumer has been dropped.
    pub fn send_message(&self, message: IngestMessage) -> Result<(), ServeError> {
        // Count before the (possibly blocking) send so the gauge includes
        // the message a blocked producer is holding at the door; undo on a
        // closed queue, whose messages never became visible to anyone.
        if let Some(metrics) = &self.metrics {
            metrics.ingest_queue_depth.inc();
        }
        self.inner.send(message).map_err(|_| {
            if let Some(metrics) = &self.metrics {
                metrics.ingest_queue_depth.dec();
            }
            ServeError::Closed
        })
    }

    /// Enqueues a single request (allocation-free on the producer side).
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] if the consumer has been dropped.
    pub fn send(&self, element: ElementId) -> Result<(), ServeError> {
        self.send_message(IngestMessage::Request(element))
    }

    /// Enqueues a burst of requests (served in burst order), blocking while
    /// the queue is full.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] if the consumer has been dropped.
    pub fn send_burst(&self, burst: Vec<ElementId>) -> Result<(), ServeError> {
        self.send_message(IngestMessage::Burst(burst))
    }

    /// Asks the engine to drain all pending per-shard batches before reading
    /// further input.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] if the consumer has been dropped.
    pub fn flush(&self) -> Result<(), ServeError> {
        self.send_message(IngestMessage::Flush)
    }

    /// Asks the engine to reshard in the given [`HandoverMode`]: every
    /// request enqueued before this frame is served under the old epoch
    /// (the handover starts with a drain fence), every request after it
    /// under the new one.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] if the consumer has been dropped.
    pub fn reshard(&self, plan: ReshardPlan, mode: HandoverMode) -> Result<(), ServeError> {
        self.send_message(IngestMessage::Reshard(plan, mode))
    }

    /// Answers a lookup from the attached [`SnapshotReader`] — never touches
    /// the queue, never blocks on the engine.
    ///
    /// # Errors
    ///
    /// [`ServeError::LookupUnsupported`] without an attached reader,
    /// [`ServeError::OutOfUniverse`] for an unknown element.
    pub fn lookup(&mut self, element: ElementId) -> Result<LookupAnswer, ServeError> {
        let reader = self
            .snapshots
            .as_mut()
            .ok_or(ServeError::LookupUnsupported)?;
        let universe = reader.snapshot().partition().universe();
        reader
            .lookup(element)
            .ok_or(ServeError::OutOfUniverse { element, universe })
    }

    /// Freezes the attached metrics registry into a snapshot — never touches
    /// the queue, never blocks on the engine.
    ///
    /// # Errors
    ///
    /// [`ServeError::StatsUnsupported`] without an attached registry.
    pub fn stats(&self) -> Result<MetricsSnapshot, ServeError> {
        self.metrics
            .as_ref()
            .map(|metrics| metrics.snapshot())
            .ok_or(ServeError::StatsUnsupported)
    }
}

impl Ingest for IngestSender {
    fn send(&mut self, element: ElementId) -> Result<(), ServeError> {
        IngestSender::send(self, element)
    }

    fn send_burst(&mut self, burst: &[ElementId]) -> Result<(), ServeError> {
        IngestSender::send_burst(self, burst.to_vec())
    }

    fn flush(&mut self) -> Result<(), ServeError> {
        IngestSender::flush(self)
    }

    fn reshard(&mut self, plan: &ReshardPlan, mode: HandoverMode) -> Result<(), ServeError> {
        IngestSender::reshard(self, plan.clone(), mode)
    }

    fn lookup(&mut self, element: ElementId) -> Result<LookupAnswer, ServeError> {
        IngestSender::lookup(self, element)
    }

    fn stats(&mut self) -> Result<MetricsSnapshot, ServeError> {
        IngestSender::stats(self)
    }
}

/// The consumer half, owned by the serving engine.
#[derive(Debug)]
pub struct IngestQueue {
    inner: mpsc::Receiver<IngestMessage>,
    metrics: Option<Arc<EngineMetrics>>,
}

impl IngestQueue {
    /// Blocks for the next message; `None` once every sender is dropped and
    /// the queue is empty (the shutdown signal).
    pub fn recv(&self) -> Option<IngestMessage> {
        let message = self.inner.recv().ok();
        if message.is_some() {
            if let Some(metrics) = &self.metrics {
                metrics.ingest_queue_depth.dec();
            }
        }
        message
    }
}

/// Creates a bounded ingestion channel holding at most `capacity` queued
/// messages (bursts count as one message each).
///
/// # Panics
///
/// Panics if `capacity` is zero (a zero-capacity rendezvous channel would
/// deadlock single-threaded producers).
pub fn ingest_channel(capacity: usize) -> (IngestSender, IngestQueue) {
    build_channel(capacity, None)
}

/// [`ingest_channel`] wired into a metrics registry: senders maintain the
/// registry's `ingest_queue_depth` gauge (incremented on enqueue, decremented
/// on dequeue — both halves installed together, so the gauge cannot drift)
/// and answer [`Ingest::stats`] with registry snapshots. Pass the engine's
/// own [`ShardedEngine::metrics`](crate::ShardedEngine::metrics) `Arc` so
/// channel and engine report into one registry.
///
/// # Panics
///
/// Panics if `capacity` is zero, like [`ingest_channel`].
pub fn ingest_channel_with_metrics(
    capacity: usize,
    metrics: Arc<EngineMetrics>,
) -> (IngestSender, IngestQueue) {
    build_channel(capacity, Some(metrics))
}

fn build_channel(
    capacity: usize,
    metrics: Option<Arc<EngineMetrics>>,
) -> (IngestSender, IngestQueue) {
    assert!(capacity > 0, "the ingest queue capacity must be positive");
    let (sender, receiver) = mpsc::sync_channel(capacity);
    (
        IngestSender {
            inner: sender,
            snapshots: None,
            metrics: metrics.clone(),
        },
        IngestQueue {
            inner: receiver,
            metrics,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_arrive_in_send_order() {
        let (sender, queue) = ingest_channel(16);
        sender.send(ElementId::new(1)).unwrap();
        sender
            .send_burst(vec![ElementId::new(2), ElementId::new(3)])
            .unwrap();
        sender.flush().unwrap();
        drop(sender);
        assert_eq!(
            queue.recv(),
            Some(IngestMessage::Request(ElementId::new(1)))
        );
        assert_eq!(
            queue.recv(),
            Some(IngestMessage::Burst(vec![
                ElementId::new(2),
                ElementId::new(3)
            ]))
        );
        assert_eq!(queue.recv(), Some(IngestMessage::Flush));
        assert_eq!(queue.recv(), None);
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let (sender, queue) = ingest_channel(1);
        sender.send(ElementId::new(0)).unwrap();
        // The queue is full: a second send must block until the consumer
        // makes room. Run it on a helper thread and unblock it by receiving.
        let helper = std::thread::spawn(move || sender.send(ElementId::new(1)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(queue.recv().is_some());
        helper.join().unwrap().unwrap();
        assert_eq!(
            queue.recv(),
            Some(IngestMessage::Request(ElementId::new(1)))
        );
    }

    #[test]
    fn sending_into_a_dropped_queue_errors() {
        let (sender, queue) = ingest_channel(4);
        drop(queue);
        let err = sender.send(ElementId::new(0)).unwrap_err();
        assert!(matches!(err, ServeError::Closed));
        assert!(err.is_disconnect());
        let err = sender.flush().unwrap_err();
        assert!(err.to_string().contains("gone"));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_capacity_is_rejected() {
        ingest_channel(0);
    }

    #[test]
    fn the_trait_and_inherent_methods_agree() {
        let (mut sender, queue) = ingest_channel(8);
        let ingest: &mut dyn Ingest = &mut sender;
        ingest.send(ElementId::new(7)).unwrap();
        ingest
            .send_burst(&[ElementId::new(8), ElementId::new(9)])
            .unwrap();
        ingest.flush().unwrap();
        ingest
            .reshard(&ReshardPlan::empty(), HandoverMode::Warm)
            .unwrap();
        drop(sender);
        assert_eq!(
            queue.recv(),
            Some(IngestMessage::Request(ElementId::new(7)))
        );
        assert_eq!(
            queue.recv(),
            Some(IngestMessage::Burst(vec![
                ElementId::new(8),
                ElementId::new(9)
            ]))
        );
        assert_eq!(queue.recv(), Some(IngestMessage::Flush));
        assert_eq!(
            queue.recv(),
            Some(IngestMessage::Reshard(
                ReshardPlan::empty(),
                HandoverMode::Warm
            ))
        );
        assert_eq!(queue.recv(), None);
    }

    #[test]
    fn lookups_without_a_reader_are_unsupported_not_silent() {
        let (mut sender, _queue) = ingest_channel(4);
        let err = Ingest::lookup(&mut sender, ElementId::new(0)).unwrap_err();
        assert!(matches!(err, ServeError::LookupUnsupported));
        assert!(err.to_string().contains("snapshot reader"));
    }

    #[test]
    fn stats_without_a_registry_are_unsupported_not_silent() {
        let (mut sender, _queue) = ingest_channel(4);
        let err = Ingest::stats(&mut sender).unwrap_err();
        assert!(matches!(err, ServeError::StatsUnsupported));
        assert!(err.to_string().contains("metrics"));
    }

    #[test]
    fn metered_channels_track_queue_depth_and_serve_stats() {
        use satn_obs::names;
        let metrics = Arc::new(EngineMetrics::new(1));
        let (mut sender, queue) = ingest_channel_with_metrics(8, Arc::clone(&metrics));
        sender.send(ElementId::new(0)).unwrap();
        sender.send_burst(vec![ElementId::new(1)]).unwrap();
        assert_eq!(metrics.ingest_queue_depth.get(), 2);
        // The sender's stats verb reads the shared registry.
        let snapshot = Ingest::stats(&mut sender).unwrap();
        assert_eq!(snapshot.gauge(names::INGEST_QUEUE_DEPTH), Some(2));
        assert!(queue.recv().is_some());
        assert_eq!(metrics.ingest_queue_depth.get(), 1);
        assert!(queue.recv().is_some());
        assert_eq!(metrics.ingest_queue_depth.get(), 0);
        // A send into a dropped queue is undone in the gauge.
        drop(queue);
        assert!(sender.send(ElementId::new(2)).is_err());
        assert_eq!(metrics.ingest_queue_depth.get(), 0);
    }

    #[test]
    fn replay_chunks_the_stream_into_bursts() {
        let (mut sender, queue) = ingest_channel(8);
        let stream: Vec<ElementId> = (0..7).map(ElementId::new).collect();
        replay(&mut sender, stream, 3).unwrap();
        drop(sender);
        let mut bursts = Vec::new();
        while let Some(IngestMessage::Burst(burst)) = queue.recv() {
            bursts.push(burst.len());
        }
        assert_eq!(bursts, vec![3, 3, 1]);
    }
}
