//! Builder-style engine configuration: every knob of a [`ShardedEngine`]
//! in one validated value, replacing the positional constructors and
//! panicking `with_*` chains that grew with the engine.

use crate::engine::ShardedEngine;
use crate::error::ServeError;
use satn_core::{AlgorithmKind, SelfAdjustingTree};
use satn_exec::Parallelism;
use satn_sim::ShardedScenario;
use satn_tree::LayoutKind;
use satn_workloads::shard::{HandoverMode, Partition};
use std::fmt;

/// What the engine's shard trees are built from.
enum Source {
    /// A scenario: trees instantiated exactly as its per-shard reference
    /// scenarios build theirs, the reshard schedule applied online.
    Scenario(ShardedScenario),
    /// Pre-built trees over an explicit partition (the "static" mode).
    Parts {
        partition: Partition,
        trees: Vec<Box<dyn SelfAdjustingTree + Send>>,
    },
}

/// Builder for [`ShardedEngine`]: collect the configuration — source,
/// worker budget, drain threshold, reshard recipe — then validate it all at
/// once in [`ShardedEngineConfig::build`]. Invalid combinations surface as
/// [`ServeError::InvalidConfig`] values instead of the panics the old
/// positional constructors raised.
///
/// ```
/// use satn_serve::{Parallelism, ShardedEngineConfig};
/// use satn_sim::{AlgorithmKind, ShardedScenario, WorkloadSpec};
///
/// let scenario = ShardedScenario::new(
///     AlgorithmKind::RotorPush,
///     WorkloadSpec::Zipf { a: 1.8 },
///     4, 5, 2_000, 42,
/// );
/// let mut engine = ShardedEngineConfig::from_scenario(&scenario)
///     .parallelism(Parallelism::Threads(2))
///     .drain_threshold(1_024)
///     .build()?;
/// for request in scenario.stream() {
///     engine.submit(request)?;
/// }
/// assert_eq!(engine.finish()?.merged.requests(), 2_000);
/// # Ok::<(), satn_serve::ServeError>(())
/// ```
pub struct ShardedEngineConfig {
    source: Source,
    parallelism: Parallelism,
    drain_threshold: Option<usize>,
    resharding: Option<(AlgorithmKind, u64)>,
    layout: Option<LayoutKind>,
    handover: Option<HandoverMode>,
}

impl ShardedEngineConfig {
    /// Configures an engine built from a [`ShardedScenario`]: the
    /// scenario's epoch-0 partition, per-shard trees instantiated exactly
    /// as its standalone reference scenarios build theirs (what makes the
    /// serial replay a byte-exact oracle), and its reshard schedule applied
    /// online.
    pub fn from_scenario(scenario: &ShardedScenario) -> Self {
        ShardedEngineConfig::with_source(Source::Scenario(scenario.clone()))
    }

    /// Configures a **static** engine from a partition and one pre-built
    /// tree per shard (shard `s`'s tree serves local ids `0..` of
    /// `partition.owned(s)`). Built this way the engine cannot reshard
    /// unless a rebuild recipe is supplied via
    /// [`ShardedEngineConfig::resharding`].
    pub fn from_parts(partition: Partition, trees: Vec<Box<dyn SelfAdjustingTree + Send>>) -> Self {
        ShardedEngineConfig::with_source(Source::Parts { partition, trees })
    }

    fn with_source(source: Source) -> Self {
        ShardedEngineConfig {
            source,
            parallelism: Parallelism::default(),
            drain_threshold: None,
            resharding: None,
            layout: None,
            handover: None,
        }
    }

    /// Sets the worker budget used for drains (default
    /// [`Parallelism::Auto`]). Every setting produces bit-identical
    /// results; the knob only trades wall-clock time for CPU usage.
    #[must_use]
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the automatic-drain threshold (default
    /// [`crate::DEFAULT_DRAIN_THRESHOLD`]). The cadence never changes any
    /// result — only how much is buffered between drains. Zero is rejected
    /// at [`ShardedEngineConfig::build`].
    #[must_use]
    pub fn drain_threshold(mut self, threshold: usize) -> Self {
        self.drain_threshold = Some(threshold);
        self
    }

    /// Provides (or overrides) the reshard rebuild recipe: the algorithm
    /// every post-handover tree is re-instantiated with and the base seed
    /// of the per-`(shard, epoch)` derived seeds. Offline algorithms are
    /// rejected at [`ShardedEngineConfig::build`]. Scenario-built engines
    /// of online algorithms already carry their scenario's recipe; this is
    /// chiefly for [`ShardedEngineConfig::from_parts`] engines.
    #[must_use]
    pub fn resharding(mut self, algorithm: AlgorithmKind, seed: u64) -> Self {
        self.resharding = Some((algorithm, seed));
        self
    }

    /// Sets the physical tree-storage layout. For scenario-built engines
    /// this overrides the scenario's own `layout` field; for parts-built
    /// engines it applies to post-handover rebuilds (the pre-built trees
    /// keep whatever layout they were constructed with). Pure performance
    /// knob: every fingerprint and cost is layout-invariant.
    #[must_use]
    pub fn layout(mut self, layout: LayoutKind) -> Self {
        self.layout = Some(layout);
        self
    }

    /// Sets the default [`HandoverMode`] for scheduled and explicit
    /// reshards (default [`HandoverMode::Cold`]; for scenario-built engines
    /// this overrides the scenario's own `handover` field). `Warm` carries
    /// each touched shard's rotor/recency/RNG state across the epoch
    /// boundary and skips untouched-shard rebuilds entirely; `Reshard`
    /// ingest frames carry their own mode and bypass this default.
    #[must_use]
    pub fn handover(mut self, mode: HandoverMode) -> Self {
        self.handover = Some(mode);
        self
    }

    /// Validates the collected configuration and builds the engine.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for a zero drain threshold, a
    /// tree/shard count mismatch, or an offline reshard algorithm;
    /// [`ServeError::Tree`] if a scenario shard's algorithm cannot be
    /// instantiated; [`ServeError::ReshardUnsupported`] for a scenario
    /// pairing a reshard schedule with an offline algorithm.
    pub fn build(self) -> Result<ShardedEngine, ServeError> {
        let mut engine = match self.source {
            Source::Scenario(mut scenario) => {
                if let Some(layout) = self.layout {
                    scenario.layout = layout;
                }
                ShardedEngine::build_from_scenario(&scenario, self.parallelism)?
            }
            Source::Parts { partition, trees } => {
                let mut engine = ShardedEngine::assemble(partition, trees, self.parallelism)?;
                if let Some(layout) = self.layout {
                    engine.set_rebuild_layout(layout);
                }
                engine
            }
        };
        if let Some(threshold) = self.drain_threshold {
            engine.set_drain_threshold(threshold)?;
        }
        if let Some((algorithm, seed)) = self.resharding {
            engine.set_resharding(algorithm, seed)?;
        }
        if let Some(mode) = self.handover {
            engine.set_handover(mode);
        }
        Ok(engine)
    }
}

impl fmt::Debug for ShardedEngineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let source = match &self.source {
            Source::Scenario(scenario) => format!("scenario({})", scenario.name()),
            Source::Parts { partition, .. } => {
                format!("parts({} shards)", partition.shards())
            }
        };
        f.debug_struct("ShardedEngineConfig")
            .field("source", &source)
            .field("parallelism", &self.parallelism)
            .field("drain_threshold", &self.drain_threshold)
            .field("resharding", &self.resharding)
            .field("handover", &self.handover)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satn_sim::WorkloadSpec;

    fn scenario() -> ShardedScenario {
        ShardedScenario::new(
            AlgorithmKind::RotorPush,
            WorkloadSpec::Zipf { a: 1.7 },
            3,
            5,
            600,
            7,
        )
    }

    #[test]
    fn scenario_and_parts_builders_agree_on_static_runs() {
        // The two construction paths — a scenario versus its own partition
        // and freshly instantiated per-shard trees — must produce engines
        // with byte-identical runs.
        let scenario = scenario();
        let mut via_scenario = ShardedEngineConfig::from_scenario(&scenario)
            .parallelism(Parallelism::Threads(2))
            .drain_threshold(128)
            .build()
            .unwrap();
        let trees: Vec<_> = scenario
            .shard_scenarios()
            .iter()
            .map(|s| s.instantiate().unwrap())
            .collect();
        let mut via_parts = ShardedEngineConfig::from_parts(scenario.partition(), trees)
            .parallelism(Parallelism::Threads(2))
            .drain_threshold(128)
            .build()
            .unwrap();
        let requests: Vec<_> = scenario.stream().collect();
        via_scenario.submit_burst(&requests).unwrap();
        via_parts.submit_burst(&requests).unwrap();
        assert_eq!(via_scenario.finish().unwrap(), via_parts.finish().unwrap());
    }

    #[test]
    fn zero_drain_thresholds_are_invalid_config() {
        let err = ShardedEngineConfig::from_scenario(&scenario())
            .drain_threshold(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)));
        assert!(err.to_string().contains("must be positive"));
    }

    #[test]
    fn tree_count_mismatches_are_invalid_config() {
        let scenario = scenario();
        let mut trees: Vec<_> = scenario
            .shard_scenarios()
            .iter()
            .map(|s| s.instantiate().unwrap())
            .collect();
        trees.pop();
        let err = ShardedEngineConfig::from_parts(scenario.partition(), trees)
            .build()
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)));
        assert!(err.to_string().contains("one tree per shard"));
    }

    #[test]
    fn offline_reshard_recipes_are_invalid_config() {
        let err = ShardedEngineConfig::from_scenario(&scenario())
            .resharding(AlgorithmKind::StaticOpt, 7)
            .build()
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)));
        assert!(err.to_string().contains("offline"));
    }

    #[test]
    fn parts_engines_gain_resharding_through_the_builder() {
        let scenario = scenario();
        let trees: Vec<_> = scenario
            .shard_scenarios()
            .iter()
            .map(|s| s.instantiate().unwrap())
            .collect();
        let mut engine = ShardedEngineConfig::from_parts(scenario.partition(), trees)
            .parallelism(Parallelism::Serial)
            .resharding(AlgorithmKind::RotorPush, scenario.seed)
            .build()
            .unwrap();
        engine
            .reshard(satn_workloads::shard::ReshardPlan::new([(
                satn_tree::ElementId::new(0),
                1,
            )]))
            .unwrap();
        assert_eq!(engine.epoch(), 1);
    }

    #[test]
    fn the_builder_overrides_the_scenario_handover_mode() {
        let engine = ShardedEngineConfig::from_scenario(&scenario())
            .handover(HandoverMode::Warm)
            .build()
            .unwrap();
        assert_eq!(engine.handover(), HandoverMode::Warm);
    }

    #[test]
    fn debug_output_names_the_source() {
        let config = ShardedEngineConfig::from_scenario(&scenario()).drain_threshold(64);
        let rendered = format!("{config:?}");
        assert!(rendered.contains("scenario("));
        assert!(rendered.contains("drain_threshold"));
    }
}
