//! `satnd` — the network front door of the sharded serving engine.
//!
//! Binds a TCP listener, accepts `--connections` clients speaking the
//! length-prefixed wire protocol (`satn_serve::wire`), forwards every
//! decoded ingest frame into the engine's bounded ingest channel
//! (acknowledging each frame only once enqueued, so backpressure reaches
//! the clients), and drains the
//! [`ShardedEngine`](satn_serve::ShardedEngine) concurrently on the
//! `satn-exec` pool. `Lookup` frames never enter the channel: each
//! connection answers them lock-free from the engine's published snapshots
//! (the read phase), so read-mostly traffic bypasses the write path
//! entirely.
//!
//! ```text
//! satnd [--listen ADDR] [--shards N] [--levels N] [--algorithm A]
//!       [--workload W] [--requests N] [--seed S] [--router R]
//!       [--threads N|auto|serial] [--layout heap|blocked]
//!       [--reshard-every N] [--handover cold|warm] [--connections N]
//!       [--capacity N] [--verify] [--metrics-dump]
//! ```
//!
//! The scenario flags describe the engine the server fronts; with
//! `--verify`, after the last connection closes the engine report is checked
//! byte for byte against the epoch-segmented serial reference replay
//! ([`ShardedScenario::epoch_replay`]) — which requires the clients to have
//! replayed exactly the scenario's request stream (what `satn-load` does) —
//! and the live metrics registry is checked counter for counter against the
//! report (the deterministic-metrics oracle). Clients can also poll the same
//! registry mid-run over the wire with a `Stats` frame, and
//! `--metrics-dump` prints the final registry as Prometheus-style text plus
//! the tracer's recent handover/drain spans on shutdown.
//! Prints `satnd listening on ADDR` once ready; exits non-zero on any
//! serving failure or oracle divergence.

use satn_core::AlgorithmKind;
use satn_obs::names;
use satn_serve::{
    ingest_channel_with_metrics, serve_connections, EngineMetrics, EngineReport, Parallelism,
    ReshardPolicy, ReshardSchedule, ServeError, ShardedEngineConfig, ShardedScenario,
};
use satn_sim::{ShardRouter, SimRunner, WorkloadSpec};
use satn_tree::LayoutKind;
use satn_workloads::shard::HandoverMode;
use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

const USAGE: &str = "usage: satnd [--listen ADDR] [--shards N] [--levels N] [--algorithm A] \
                     [--workload W] [--requests N] [--seed S] [--router hash|range|source] \
                     [--threads N|auto|serial] [--layout heap|blocked] [--reshard-every N] \
                     [--handover cold|warm] [--connections N] [--capacity N] [--verify] \
                     [--metrics-dump]";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

/// The deterministic-metrics oracle: every counter the engine thread updates
/// at drain boundaries must equal the corresponding [`EngineReport`] total
/// exactly — the registry is an `AtomicU64` restatement of the replay
/// ledger, not an approximation of it.
fn verify_metrics(metrics: &EngineMetrics, report: &EngineReport) -> Result<(), String> {
    let serving = report.merged.total();
    let epoch = (report.epoch_fingerprints.len() as u64).saturating_sub(1);
    let expectations = [
        (
            names::REQUESTS_SERVED,
            metrics.requests_served.get(),
            report.requests,
        ),
        (
            names::BATCHES_DRAINED,
            metrics.batches_drained.get(),
            report.drains,
        ),
        (
            names::ACCESS_COST,
            metrics.access_cost.get(),
            serving.access,
        ),
        (
            names::ADJUSTMENT_COST,
            metrics.adjustment_cost.get(),
            serving.adjustment,
        ),
        (
            names::MIGRATION_UNITS,
            metrics.migration_units.get(),
            report.migration.total(),
        ),
        (names::RESHARD_EPOCH, metrics.reshard_epoch.get(), epoch),
    ];
    for (name, got, want) in expectations {
        if got != want {
            return Err(format!(
                "{name}: registry says {got}, the report says {want}"
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut listen = String::from("127.0.0.1:7411");
    let mut shards = 4u32;
    let mut levels = 6u32;
    let mut algorithm = AlgorithmKind::RotorPush;
    let mut workload = WorkloadSpec::Combined { a: 1.9, p: 0.75 };
    let mut requests = 20_000usize;
    let mut seed = 2022u64;
    let mut router: Option<ShardRouter> = None;
    let mut parallelism = Parallelism::Auto;
    let mut layout = LayoutKind::default();
    let mut reshard_every = 0usize;
    let mut handover = HandoverMode::Cold;
    let mut connections = 1usize;
    let mut capacity = 16usize;
    let mut verify = false;
    let mut metrics_dump = false;

    let mut args = std::env::args().skip(1);
    while let Some(argument) = args.next() {
        match argument.as_str() {
            "--listen" => match args.next() {
                Some(value) => listen = value,
                None => return usage(),
            },
            "--shards" => match args.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(value) if value > 0 => shards = value,
                _ => return usage(),
            },
            "--levels" => match args.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(value) if value > 0 => levels = value,
                _ => return usage(),
            },
            "--algorithm" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => algorithm = value,
                None => return usage(),
            },
            "--workload" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => workload = value,
                None => return usage(),
            },
            "--requests" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => requests = value,
                None => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => seed = value,
                None => return usage(),
            },
            "--router" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => router = Some(value),
                None => return usage(),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => parallelism = value,
                None => return usage(),
            },
            "--layout" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => layout = value,
                None => return usage(),
            },
            "--reshard-every" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(value) if value > 0 => reshard_every = value,
                _ => return usage(),
            },
            "--handover" => match args.next().and_then(|v| v.parse().ok()) {
                Some(value) => handover = value,
                None => return usage(),
            },
            "--connections" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(value) if value > 0 => connections = value,
                _ => return usage(),
            },
            "--capacity" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(value) if value > 0 => capacity = value,
                _ => return usage(),
            },
            "--verify" => verify = true,
            "--metrics-dump" => metrics_dump = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    if verify && connections != 1 {
        eprintln!("satnd: --verify requires --connections 1 (one ordered stream)");
        return ExitCode::FAILURE;
    }

    let mut scenario = ShardedScenario::new(algorithm, workload, shards, levels, requests, seed);
    scenario.layout = layout;
    // The scenario carries the handover mode so the `--verify` reference
    // replay reproduces warm handovers exactly as the engine runs them.
    scenario.handover = handover;
    if let Some(router) = router {
        scenario.router = router;
    }
    if reshard_every > 0 {
        scenario.reshard = ReshardSchedule::Policy(ReshardPolicy::MoveHottest {
            every: reshard_every,
            max_moves: 16,
        });
    }

    let engine = match ShardedEngineConfig::from_scenario(&scenario)
        .parallelism(parallelism)
        .build()
    {
        Ok(engine) => engine,
        Err(error) => {
            eprintln!("satnd: engine configuration rejected: {error}");
            return ExitCode::FAILURE;
        }
    };

    let listener = match TcpListener::bind(&listen) {
        Ok(listener) => listener,
        Err(error) => {
            eprintln!("satnd: cannot bind {listen}: {error}");
            return ExitCode::FAILURE;
        }
    };
    let addr = listener
        .local_addr()
        .expect("a bound listener has an address");
    println!("satnd listening on {addr} — {}", scenario.name());
    let _ = std::io::stdout().flush();

    // The registry and tracer outlive the engine's serving thread: the
    // connection workers answer Stats frames from the registry mid-run, and
    // the shutdown path dumps and oracle-checks it after the thread joins.
    let metrics = Arc::clone(engine.metrics());
    let tracer = Arc::clone(engine.tracer());
    let (sender, queue) = ingest_channel_with_metrics(capacity, Arc::clone(&metrics));
    // Open the read side before the engine moves to its serving thread:
    // every connection worker answers Lookup frames lock-free from the
    // snapshots the engine publishes at each drain boundary.
    let mut engine = engine;
    let reader = engine.snapshots();
    let engine_thread = std::thread::spawn(move || -> Result<EngineReport, ServeError> {
        engine.serve_queue(&queue)?;
        engine.finish()
    });

    let started = Instant::now();
    let reports = serve_connections(
        &listener,
        &sender,
        Some(&reader),
        Parallelism::from_thread_count(connections),
        connections,
    );
    drop(sender); // Close the channel so the engine drains and finishes.
    let elapsed = started.elapsed().as_secs_f64();

    let report = match engine_thread
        .join()
        .expect("the engine thread never panics")
    {
        Ok(report) => report,
        Err(error) => {
            eprintln!("satnd: engine failed: {error}");
            return ExitCode::FAILURE;
        }
    };
    let reports = match reports {
        Ok(reports) => reports,
        Err(error) => {
            eprintln!("satnd: accept loop failed: {error}");
            return ExitCode::FAILURE;
        }
    };

    let mut dirty = 0usize;
    let mut lookups = 0u64;
    for connection in &reports {
        lookups += connection.lookups;
        match &connection.error {
            None => println!(
                "connection {}: {} frames, {} lookups, clean shutdown",
                connection.connection, connection.frames, connection.lookups
            ),
            Some(error) if error.is_disconnect() => println!(
                "connection {}: {} frames, {} lookups, peer disconnected ({error})",
                connection.connection, connection.frames, connection.lookups
            ),
            Some(error) => {
                println!(
                    "connection {}: {} frames, {} lookups, FAILED: {error}",
                    connection.connection, connection.frames, connection.lookups
                );
                dirty += 1;
            }
        }
    }
    println!(
        "served {} requests + {lookups} lookups across {} epochs in {elapsed:.3}s ({:.0} req/s)",
        report.requests,
        report.epoch_fingerprints.len(),
        (report.requests + lookups) as f64 / elapsed.max(f64::MIN_POSITIVE),
    );
    if dirty > 0 {
        eprintln!("satnd: {dirty} connection(s) failed with protocol errors");
        return ExitCode::FAILURE;
    }

    if verify {
        if report.requests != scenario.requests as u64 {
            eprintln!(
                "satnd: oracle needs the full scenario stream ({} requests), got {}",
                scenario.requests, report.requests
            );
            return ExitCode::FAILURE;
        }
        let reference = match scenario.epoch_replay(&SimRunner::new()) {
            Ok(reference) => reference,
            Err(error) => {
                eprintln!("satnd: reference replay failed: {error}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(divergence) = report.verify_against(&reference) {
            eprintln!("satnd: ORACLE DIVERGED: {divergence}");
            return ExitCode::FAILURE;
        }
        if let Err(divergence) = verify_metrics(&metrics, &report) {
            eprintln!("satnd: METRICS ORACLE DIVERGED: {divergence}");
            return ExitCode::FAILURE;
        }
        println!("oracle ok: replay matched the serial reference byte for byte");
        println!("metrics ok: every drain-boundary counter equals its replay total");
    }

    if metrics_dump {
        print!("{}", metrics.snapshot().to_prometheus());
        let events = tracer.recent();
        println!(
            "# trace ring: {} recorded, {} dropped, showing last {}",
            tracer.recorded(),
            tracer.dropped(),
            events.len().min(16),
        );
        for event in events.iter().rev().take(16).rev() {
            println!(
                "# trace[{}] {:?} epoch={} served={} detail={} t={:.6}s",
                event.seq,
                event.stamp.kind,
                event.stamp.epoch,
                event.stamp.served,
                event.stamp.detail,
                event.wall.as_secs_f64(),
            );
        }
    }
    ExitCode::SUCCESS
}
