//! The unified error hierarchy of the serving layer: engine, ingestion,
//! wire protocol, and transport failures all surface as one [`ServeError`],
//! so every caller — in-process or networked — handles failure the same way.

use crate::wire::WireError;
use satn_network::NetworkError;
use satn_tree::{ElementId, TreeError};
use satn_workloads::shard::ReshardError;
use std::fmt;

/// An error produced while building or driving a sharded serving engine —
/// or while moving its ingestion protocol across a transport.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// A submitted request names an element outside the engine's universe.
    OutOfUniverse {
        /// The offending element.
        element: ElementId,
        /// Size of the engine's element universe.
        universe: u32,
    },
    /// A shard's tree failed while instantiating or serving.
    Tree {
        /// The shard the failure occurred on.
        shard: u32,
        /// The underlying tree error.
        error: TreeError,
    },
    /// An ego-tree shard failed while instantiating or serving.
    Network {
        /// The shard the failure occurred on.
        shard: u32,
        /// The underlying network error.
        error: NetworkError,
    },
    /// A reshard plan does not fit the engine's partition.
    Reshard(ReshardError),
    /// The handover protocol produced a placement the engine could not
    /// rebuild a shard tree from — a non-complete-tree size or a placement
    /// that is not a bijection. The protocol derives placements
    /// deterministically, so this indicates an internal inconsistency; it
    /// surfaces as an error rather than a panic because reshard plans
    /// arrive over the wire and must never take the server down.
    Handover {
        /// The shard whose placement was unusable.
        shard: u32,
        /// What was wrong with the placement.
        reason: String,
    },
    /// The engine cannot reshard: it was assembled without rebuild
    /// information (raw trees instead of a scenario) or its algorithm is
    /// offline (Static-Opt computes its layout from the whole future
    /// subsequence, which no online handover can know).
    ReshardUnsupported {
        /// Why resharding is unavailable.
        reason: &'static str,
    },
    /// A lookup was issued on an ingest handle that has no snapshot reader
    /// attached — the transport can carry writes but not reads.
    LookupUnsupported,
    /// A stats poll was issued on an ingest handle that has no metrics
    /// registry attached.
    StatsUnsupported,
    /// The ingestion peer is gone: the queue consumer was dropped (channel
    /// transport) or the connection was shut down (network transport).
    Closed,
    /// A transport I/O failure (socket read/write, accept, connect).
    Io(std::io::Error),
    /// A malformed or out-of-contract wire frame.
    Protocol(WireError),
    /// An engine configuration rejected at build time.
    InvalidConfig(String),
}

impl ServeError {
    /// Whether this error means the peer is simply gone — the
    /// end-of-stream cases (closed channel, reset/aborted connection, a
    /// stream cut mid-frame) that a server loop logs rather than propagates.
    pub fn is_disconnect(&self) -> bool {
        match self {
            ServeError::Closed => true,
            ServeError::Io(error) => matches!(
                error.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
            ),
            ServeError::Protocol(WireError::Truncated) => true,
            _ => false,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(error: std::io::Error) -> Self {
        ServeError::Io(error)
    }
}

impl From<WireError> for ServeError {
    fn from(error: WireError) -> Self {
        ServeError::Protocol(error)
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::OutOfUniverse { element, universe } => {
                write!(
                    f,
                    "request {element} is outside the {universe}-element universe"
                )
            }
            ServeError::Tree { shard, error } => write!(f, "shard {shard}: {error}"),
            ServeError::Network { shard, error } => write!(f, "shard {shard}: {error}"),
            ServeError::Reshard(error) => error.fmt(f),
            ServeError::Handover { shard, reason } => {
                write!(
                    f,
                    "shard {shard}: handover produced an unusable placement: {reason}"
                )
            }
            ServeError::ReshardUnsupported { reason } => {
                write!(f, "the engine cannot reshard: {reason}")
            }
            ServeError::LookupUnsupported => {
                f.write_str("this ingest handle has no snapshot reader to serve lookups")
            }
            ServeError::StatsUnsupported => {
                f.write_str("this ingest handle has no metrics registry to serve stats")
            }
            ServeError::Closed => f.write_str("the ingest peer is gone"),
            ServeError::Io(error) => write!(f, "transport: {error}"),
            ServeError::Protocol(error) => write!(f, "protocol: {error}"),
            ServeError::InvalidConfig(reason) => {
                write!(f, "invalid engine configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::OutOfUniverse { .. } => None,
            ServeError::Tree { error, .. } => Some(error),
            ServeError::Network { error, .. } => Some(error),
            ServeError::Reshard(error) => Some(error),
            ServeError::Handover { .. } => None,
            ServeError::ReshardUnsupported { .. } => None,
            ServeError::LookupUnsupported => None,
            ServeError::StatsUnsupported => None,
            ServeError::Closed => None,
            ServeError::Io(error) => Some(error),
            ServeError::Protocol(error) => Some(error),
            ServeError::InvalidConfig(_) => None,
        }
    }
}
