//! Errors of the sharded serving engines.

use satn_network::NetworkError;
use satn_tree::{ElementId, TreeError};
use satn_workloads::shard::ReshardError;
use std::fmt;

/// An error produced while building or driving a sharded serving engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// A submitted request names an element outside the engine's universe.
    OutOfUniverse {
        /// The offending element.
        element: ElementId,
        /// Size of the engine's element universe.
        universe: u32,
    },
    /// A shard's tree failed while instantiating or serving.
    Tree {
        /// The shard the failure occurred on.
        shard: u32,
        /// The underlying tree error.
        error: TreeError,
    },
    /// An ego-tree shard failed while instantiating or serving.
    Network {
        /// The shard the failure occurred on.
        shard: u32,
        /// The underlying network error.
        error: NetworkError,
    },
    /// A reshard plan does not fit the engine's partition.
    Reshard(ReshardError),
    /// The engine cannot reshard: it was built without rebuild information
    /// ([`crate::ShardedEngine::new`] with raw trees) or its algorithm is
    /// offline (Static-Opt computes its layout from the whole future
    /// subsequence, which no online handover can know).
    ReshardUnsupported {
        /// Why resharding is unavailable.
        reason: &'static str,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::OutOfUniverse { element, universe } => {
                write!(
                    f,
                    "request {element} is outside the {universe}-element universe"
                )
            }
            ServeError::Tree { shard, error } => write!(f, "shard {shard}: {error}"),
            ServeError::Network { shard, error } => write!(f, "shard {shard}: {error}"),
            ServeError::Reshard(error) => error.fmt(f),
            ServeError::ReshardUnsupported { reason } => {
                write!(f, "the engine cannot reshard: {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::OutOfUniverse { .. } => None,
            ServeError::Tree { error, .. } => Some(error),
            ServeError::Network { error, .. } => Some(error),
            ServeError::Reshard(error) => Some(error),
            ServeError::ReshardUnsupported { .. } => None,
        }
    }
}
