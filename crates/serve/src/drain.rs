//! The shared drain harness of the serving engines.
//!
//! Both [`ShardedEngine`](crate::ShardedEngine) and
//! [`SourceShardedEngine`](crate::SourceShardedEngine) drain the same way:
//! one `satn-exec` worker per shard serves the shard's pending batch into a
//! fresh batch summary, results stream back **in shard order** via
//! [`satn_exec::for_each_ordered`], batch summaries merge into the
//! [`ShardedCostSummary`], and the reported failure — if any — is the one of
//! the lowest-indexed failing shard, independent of completion order. That
//! merge discipline is the determinism-sensitive part, so it lives here
//! exactly once.

use satn_exec::{for_each_ordered, Parallelism};
use satn_tree::{CostSummary, ShardedCostSummary};

/// Drains every shard concurrently: `serve` consumes a shard's pending batch
/// and returns the batch's cost summary plus its outcome. Summaries merge
/// into `accounting` in shard order (every shard's served prefix is always
/// accounted, failed or not); the error of the first failing shard **in
/// shard order** is returned.
///
/// # Errors
///
/// `Err((shard, error))` for the lowest-indexed failing shard.
pub(crate) fn drain_shards<S, E, F>(
    shards: &mut [S],
    parallelism: Parallelism,
    accounting: &mut ShardedCostSummary,
    serve: F,
) -> Result<(), (u32, E)>
where
    S: Send,
    E: Send,
    F: Fn(&mut S) -> (CostSummary, Result<(), E>) + Sync,
{
    let mut failure: Option<(u32, E)> = None;
    for_each_ordered(
        shards,
        parallelism,
        |_, shard| serve(shard),
        |index, (delta, outcome)| {
            accounting.merge_into_shard(index as u32, &delta);
            if let (Err(error), None) = (outcome, failure.as_ref()) {
                failure = Some((index as u32, error));
            }
        },
    );
    match failure {
        Some(failure) => Err(failure),
        None => Ok(()),
    }
}
