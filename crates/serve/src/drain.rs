//! The shared drain harness of the serving engines.
//!
//! Both [`ShardedEngine`](crate::ShardedEngine) and
//! [`SourceShardedEngine`](crate::SourceShardedEngine) drain the same way:
//! one `satn-exec` worker per shard serves the shard's pending batch into a
//! fresh batch summary, results stream back **in shard order** via
//! [`satn_exec::for_each_ordered`], batch summaries merge into the
//! [`ShardedCostSummary`], and the reported failure — if any — is the one of
//! the lowest-indexed failing shard, independent of completion order. That
//! merge discipline is the determinism-sensitive part, so it lives here
//! exactly once — as does the batch-buffer bookkeeping ([`DrainControl`])
//! that decides *when* an automatic drain fires, which the resharding
//! drain fence relies on and which therefore must not drift between the two
//! engines.

use satn_exec::{for_each_ordered, Parallelism};
use satn_tree::{CostObserver, CostSummary, ShardedCostSummary};

/// The shared batch-buffer bookkeeping of the serving engines: how many
/// requests are buffered across all shards, when the automatic drain fires,
/// and the run's submitted/drain counters. Both engines route every submit
/// and every drain through this one implementation, so the drain-fence
/// semantics of a reshard handover are identical on both.
#[derive(Debug, Clone)]
pub(crate) struct DrainControl {
    threshold: usize,
    pending: usize,
    drains: u64,
    submitted: u64,
}

impl DrainControl {
    /// Creates a control with the given automatic-drain threshold.
    pub(crate) fn new(threshold: usize) -> Self {
        DrainControl {
            threshold,
            pending: 0,
            drains: 0,
            submitted: 0,
        }
    }

    /// Overrides the automatic-drain threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub(crate) fn set_threshold(&mut self, threshold: usize) {
        assert!(threshold > 0, "the drain threshold must be positive");
        self.threshold = threshold;
    }

    /// Counts one buffered request; `true` when the buffered total has
    /// reached the threshold and the caller must drain.
    pub(crate) fn note_submitted(&mut self) -> bool {
        self.pending += 1;
        self.submitted += 1;
        self.pending >= self.threshold
    }

    /// Starts a drain: `false` (and no drain counted) when nothing is
    /// buffered, else the buffer empties and the drain is counted.
    pub(crate) fn begin_drain(&mut self) -> bool {
        if self.pending == 0 {
            return false;
        }
        self.pending = 0;
        self.drains += 1;
        true
    }

    /// Requests submitted so far (served or still buffered).
    pub(crate) fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Drains performed so far.
    pub(crate) fn drains(&self) -> u64 {
        self.drains
    }
}

/// Drains every shard concurrently: `serve` consumes a shard's pending batch
/// and returns the batch's cost summary plus its outcome. Summaries merge
/// into `accounting` in shard order (every shard's served prefix is always
/// accounted, failed or not); the error of the first failing shard **in
/// shard order** is returned. `observer` sees each batch summary just before
/// it merges — on the merge thread, in shard order — so metric registries
/// mirror the ledger exactly at every drain boundary.
///
/// # Errors
///
/// `Err((shard, error))` for the lowest-indexed failing shard.
pub(crate) fn drain_shards<S, E, F>(
    shards: &mut [S],
    parallelism: Parallelism,
    accounting: &mut ShardedCostSummary,
    observer: &dyn CostObserver,
    serve: F,
) -> Result<(), (u32, E)>
where
    S: Send,
    E: Send,
    F: Fn(&mut S) -> (CostSummary, Result<(), E>) + Sync,
{
    let mut failure: Option<(u32, E)> = None;
    for_each_ordered(
        shards,
        parallelism,
        |_, shard| serve(shard),
        |index, (delta, outcome)| {
            observer.on_batch(index as u32, &delta);
            accounting.merge_into_shard(index as u32, &delta);
            if let (Err(error), None) = (outcome, failure.as_ref()) {
                failure = Some((index as u32, error));
            }
        },
    );
    match failure {
        Some(failure) => Err(failure),
        None => Ok(()),
    }
}
