//! # satn-serve
//!
//! The sharded multi-tree serving engine: the production-scale front of the
//! workspace, serving a global request stream across `S` independent
//! per-shard self-adjusting trees.
//!
//! ```text
//!                          ┌──────────────── satn-serve ────────────────┐
//!  producers               │   ShardRouter        per-shard batches     │
//!  (workloads,   bounded   │   (hash/range/       ┌─────┐   satn-exec   │
//!   sockets,  ── MPSC ───▶ │    source-affinity) ─▶ S₀  │── pool ──┐    │
//!   tests)       IngestQueue                      ├─────┤  drains  │    │
//!                 + flush  │                    ─▶ S₁  │  batches  ▼    │
//!                protocol  │                      ├─────┤   shard-order │
//!                          │                    ─▶ ⋮   │   merge:      │
//!                          │                      └─────┘   costs +     │
//!                          │                               fingerprints │
//!                          └────────────────────────────────────────────┘
//! ```
//!
//! * [`ShardedEngine`] — `S` per-shard trees (any
//!   [`AlgorithmKind`](satn_sim::AlgorithmKind)) partitioning the element
//!   universe via an **epoch-versioned** [`Partition`]
//!   ([`EpochedPartition`] log) built from a pluggable [`ShardRouter`]
//!   policy; requests buffer per shard and drain concurrently through the
//!   allocation-free `serve_batch` fast path, one `satn-exec` worker per
//!   shard batch,
//! * [`ShardedEngine::reshard`] — the deterministic handover: **drain
//!   fence** (buffered batches served under the closing epoch, boundary
//!   fingerprints recorded) → **migrate** (moved elements deleted from
//!   their source trees and re-inserted at their destinations in canonical
//!   element order, each paying its access cost) → **epoch bump** (log +
//!   ledger). Also reachable as a [`ReshardPlan`] control frame through the
//!   ingest queue, or automatically via a load-adaptive [`ReshardPolicy`],
//! * [`SourceShardedEngine`] — the ego-tree-per-source mode backed by
//!   `satn-network`: source-affinity routing groups each source's ego-tree
//!   onto one shard,
//! * [`Ingest`] — the transport-agnostic ingestion trait (`send`,
//!   `send_burst`, `flush`, `reshard`, `lookup`), implemented by both the
//!   in-process [`IngestSender`] and the TCP client [`TcpIngest`]; code
//!   written against it runs identically over either transport,
//! * [`ShardedEngine::snapshots`] / [`SnapshotReader`] — the lock-free
//!   **read phase**: every drain boundary atomically publishes an immutable
//!   [`EngineSnapshot`] (epoch partition + one frozen
//!   [`TreeSnapshot`](satn_tree::TreeSnapshot) per shard) that any number
//!   of reader handles serve lookups from without touching the write path,
//! * [`ingest_channel`] / [`IngestQueue`] — the bounded channel-based
//!   ingestion layer with backpressure and a drain/flush/reshard protocol,
//! * [`wire`](crate::Frame) / [`serve_connections`] — the length-prefixed
//!   binary wire protocol and the server-side accept loop behind the
//!   `satnd` binary, carrying the same protocol over TCP with per-frame
//!   acknowledgements and end-to-end backpressure,
//! * [`EngineMetrics`] / [`TraceRing`] — the `satn-obs` observability
//!   layer threaded through the engine: lock-free counters and gauges
//!   updated at drain boundaries (so every counter in a
//!   [`MetricsSnapshot`] equals its serial-replay total), a bounded ring
//!   of deterministic reshard-handover and drain trace stamps, and a
//!   `Stats`/`StatsReply` wire frame pair polling it all over TCP,
//! * [`ShardedEngineConfig`] — the builder-style engine configuration,
//!   validating every knob at [`ShardedEngineConfig::build`],
//! * [`EngineReport`] — per-shard cost summaries, per-epoch sub-summaries
//!   with explicit [`MigrationCost`] terms, and occupancy **fingerprints**
//!   at every epoch boundary.
//!
//! ## Determinism contract
//!
//! Everything is bit-identical at every thread count, drain cadence, and
//! burst shape: per-shard request order is submission order, shards share no
//! state, results merge in shard order, and the reshard handover is a pure
//! function of the scenario and the stream position. The serial reference
//! replay — [`satn_sim::ShardedScenario::epoch_replay`] running *standalone*
//! per-epoch per-shard scenarios through [`satn_sim::SimRunner`], re-deriving
//! every handover itself — reproduces the engine's per-epoch cost
//! sub-summaries, migration costs, and boundary fingerprints byte for byte,
//! which is exactly what the crate's property tests and the `serve-smoke` CI
//! binary assert.
//!
//! ## Example
//!
//! ```
//! use satn_serve::{Ingest, Parallelism, ShardedEngineConfig};
//! use satn_sim::{AlgorithmKind, ShardRouter, ShardedScenario, WorkloadSpec};
//!
//! // 4 shards × 31 elements, Zipf traffic, hash routing.
//! let scenario = ShardedScenario::new(
//!     AlgorithmKind::RotorPush,
//!     WorkloadSpec::Zipf { a: 1.8 },
//!     4,     // shards
//!     5,     // levels per shard => 31 elements each
//!     2_000, // requests
//!     42,    // seed
//! );
//! let mut engine = ShardedEngineConfig::from_scenario(&scenario)
//!     .parallelism(Parallelism::Auto)
//!     .build()?;
//! for request in scenario.stream() {
//!     engine.submit(request)?;
//! }
//! let report = engine.finish()?;
//! assert_eq!(report.merged.requests(), 2_000);
//! assert_eq!(report.per_shard.len(), 4);
//! # Ok::<(), satn_serve::ServeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod config;
mod drain;
mod ego;
mod engine;
mod error;
mod ingest;
mod net;
mod snapshot;
mod wire;

pub use config::ShardedEngineConfig;
pub use ego::{SourceShardedEngine, SourceShardedReport};
pub use engine::{EngineReport, ShardReport, ShardedEngine, DEFAULT_DRAIN_THRESHOLD};
pub use error::ServeError;
pub use ingest::{
    ingest_channel, ingest_channel_with_metrics, replay, Ingest, IngestMessage, IngestQueue,
    IngestSender,
};
pub use net::{serve_connections, ConnectionReport, TcpIngest, DEFAULT_WINDOW};
pub use snapshot::{EngineSnapshot, LookupAnswer, SnapshotReader};
pub use wire::{
    decode_body, encode_frame, read_frame, write_frame, Frame, WireError, MAX_BURST_ELEMENTS,
    MAX_FRAME_BODY, MAX_PLAN_MOVES,
};

// Re-exported so engines can be configured without extra imports.
pub use satn_exec::Parallelism;
// Re-exported so stats consumers and instrumented callers need no direct
// dependency on the observability crate.
pub use satn_obs::{EngineMetrics, MetricsSnapshot, TraceEvent, TraceKind, TraceRing, TraceStamp};
pub use satn_sim::{ReshardSchedule, ShardedReplay, ShardedScenario};
pub use satn_tree::{EpochCostSummary, MigrationCost, ShardedCostSummary};
pub use satn_workloads::shard::{
    EpochedPartition, HandoverMode, ParseHandoverError, Partition, ReshardError, ReshardEvent,
    ReshardPlan, ReshardPolicy, ShardRouter,
};

// Engines cross thread boundaries wholesale in server settings (built on one
// thread, driven on another), and the ingestion halves are shared across
// producer threads by design.
#[allow(dead_code)]
fn _assert_parallel_safe() {
    fn assert_send<T: Send + 'static>() {}
    assert_send::<ShardedEngine>();
    assert_send::<SourceShardedEngine>();
    assert_send::<IngestSender>();
    assert_send::<IngestQueue>();
    assert_send::<EngineReport>();
    assert_send::<ServeError>();
    assert_send::<ShardedEngineConfig>();
    assert_send::<TcpIngest>();
    assert_send::<ConnectionReport>();
    assert_send::<Frame>();
    // Readers are cloned across connection workers; snapshots are shared
    // behind `Arc` by arbitrarily many reader threads.
    fn assert_send_sync<T: Send + Sync + 'static>() {}
    assert_send::<SnapshotReader>();
    assert_send_sync::<EngineSnapshot>();
    assert_send_sync::<LookupAnswer>();
    // The registry and tracer are shared by the engine thread, every
    // connection worker, and any number of stats pollers at once.
    assert_send_sync::<EngineMetrics>();
    assert_send_sync::<TraceRing>();
    assert_send_sync::<MetricsSnapshot>();
}
