//! The TCP transport of the ingestion protocol: the client-side
//! [`TcpIngest`] implementor of [`Ingest`] and the server-side accept loop
//! feeding an [`IngestSender`].
//!
//! ```text
//!  client                         server (satnd)
//!  ───────                        ──────────────────────────────────────
//!  TcpIngest ── frames ──▶ accept loop (task_scope worker per connection)
//!      ▲                        │ decode, forward
//!      └────── Ack{seq} ────────┤
//!                               ▼ bounded channel (backpressure)
//!                          IngestSender ──▶ IngestQueue ──▶ ShardedEngine
//! ```
//!
//! **Backpressure end to end:** the server acknowledges a frame only after
//! it is accepted by the bounded ingest channel, and the client sends at
//! most `window` unacknowledged frames before blocking on acks. A slow
//! engine therefore stalls the channel, which stalls acknowledgements,
//! which stalls every client — no unbounded buffering anywhere.
//!
//! **Determinism:** the engine behind the queue never knows which transport
//! a message crossed, so a single connection replaying a stream in order is
//! bit-identical to the same stream submitted in-process (asserted by
//! `tests/net_determinism.rs` and the `satnd --verify` oracle). Multiple
//! concurrent connections interleave at the channel exactly like multiple
//! in-process producers do: each connection's own frame order is preserved.
//!
//! **Failure isolation:** a malformed frame or I/O error closes only its
//! own connection (reported per connection in [`ConnectionReport`]); the
//! engine and the other connections keep running. A panicking worker
//! poisons nothing that matters: the report mutex recovers via
//! [`PoisonError::into_inner`], so the accept loop and the remaining
//! connections carry on.
//!
//! **The read path:** a `Lookup` frame never enters the channel above.
//! When the accept loop is given a [`SnapshotReader`], each connection
//! worker answers lookups directly from the engine's published snapshot —
//! lock-free, off the write path — and replies with a `Found` frame.
//! Lookups carry no sequence number and consume no window slot; the
//! `Found` reply is their acknowledgement.

use crate::error::ServeError;
use crate::ingest::{Ingest, IngestMessage, IngestSender};
use crate::snapshot::{LookupAnswer, SnapshotReader};
use crate::wire::{read_frame, write_frame, Frame, WireError, MAX_BURST_ELEMENTS};
use satn_exec::{task_scope_instrumented, Parallelism};
use satn_obs::MetricsSnapshot;
use satn_tree::ElementId;
use satn_workloads::shard::{HandoverMode, ReshardPlan};
use std::fmt;
use std::io::BufReader;
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Mutex, PoisonError};

/// Default number of unacknowledged frames a [`TcpIngest`] keeps in flight.
pub const DEFAULT_WINDOW: usize = 32;

/// The TCP implementor of [`Ingest`]: encodes protocol messages as wire
/// frames on a connection to a `satnd` server, pipelining up to `window`
/// frames ahead of the server's cumulative acknowledgements.
pub struct TcpIngest {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    write_scratch: Vec<u8>,
    read_scratch: Vec<u8>,
    sent: u64,
    acked: u64,
    window: usize,
}

impl TcpIngest {
    /// Connects to a `satnd` server.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(TcpIngest {
            reader,
            writer,
            write_scratch: Vec::new(),
            read_scratch: Vec::new(),
            sent: 0,
            acked: 0,
            window: DEFAULT_WINDOW,
        })
    }

    /// Overrides the pipelining window (builder style). A window of 1 makes
    /// every frame a synchronous round trip.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero (nothing could ever be sent).
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window > 0, "the pipelining window must be positive");
        self.window = window;
        self
    }

    /// Frames sent so far on this connection.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Frames the server has acknowledged so far (cumulative). An ack means
    /// the frame was accepted into the engine's ingest queue.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Validates and applies one cumulative acknowledgement.
    fn note_ack(&mut self, seq: u64) -> Result<(), ServeError> {
        if seq <= self.acked || seq > self.sent {
            return Err(WireError::Malformed {
                reason: "acknowledgement sequence out of range",
            }
            .into());
        }
        self.acked = seq;
        Ok(())
    }

    /// Reads one acknowledgement frame from the server.
    fn recv_ack(&mut self) -> Result<(), ServeError> {
        match read_frame(&mut self.reader, &mut self.read_scratch)? {
            Some(Frame::Ack { seq }) => self.note_ack(seq),
            Some(_) => Err(WireError::Malformed {
                reason: "expected an acknowledgement frame",
            }
            .into()),
            None => Err(ServeError::Closed),
        }
    }

    fn send_frame(&mut self, message: IngestMessage) -> Result<(), ServeError> {
        while self.sent - self.acked >= self.window as u64 {
            self.recv_ack()?;
        }
        write_frame(
            &mut self.writer,
            &Frame::Ingest(message),
            &mut self.write_scratch,
        )?;
        self.sent += 1;
        Ok(())
    }

    /// Waits until every sent frame is acknowledged (without closing the
    /// connection), then returns the count — the network analogue of a
    /// producer observing that its sends were all accepted.
    ///
    /// # Errors
    ///
    /// Any transport or protocol error while draining acknowledgements.
    pub fn drain_acks(&mut self) -> Result<u64, ServeError> {
        while self.acked < self.sent {
            self.recv_ack()?;
        }
        Ok(self.acked)
    }

    /// Performs the orderly shutdown handshake: drains all outstanding
    /// acknowledgements, half-closes the write side (the server sees a
    /// clean end of stream, exactly like the last in-process sender
    /// dropping), and waits for the server to close its side. Returns the
    /// total number of acknowledged frames.
    ///
    /// # Errors
    ///
    /// Any transport or protocol error during the handshake.
    pub fn finish(mut self) -> Result<u64, ServeError> {
        self.drain_acks()?;
        self.writer.shutdown(Shutdown::Write)?;
        match read_frame(&mut self.reader, &mut self.read_scratch)? {
            None => Ok(self.acked),
            Some(_) => Err(WireError::Malformed {
                reason: "unexpected frame after the shutdown handshake",
            }
            .into()),
        }
    }
}

impl Ingest for TcpIngest {
    fn send(&mut self, element: ElementId) -> Result<(), ServeError> {
        self.send_frame(IngestMessage::Request(element))
    }

    /// A burst longer than [`MAX_BURST_ELEMENTS`] is split into cap-sized
    /// frames client-side — the elements still arrive in burst order, one
    /// frame after another on the same ordered connection, so the engine
    /// serves the exact same request sequence. (Before this split existed,
    /// an over-cap burst encoded a frame the server rejected as oversized,
    /// silently killing the connection mid-stream.)
    fn send_burst(&mut self, burst: &[ElementId]) -> Result<(), ServeError> {
        if burst.is_empty() {
            // An explicit empty burst is still one protocol message.
            return self.send_frame(IngestMessage::Burst(Vec::new()));
        }
        for chunk in burst.chunks(MAX_BURST_ELEMENTS) {
            self.send_frame(IngestMessage::Burst(chunk.to_vec()))?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), ServeError> {
        self.send_frame(IngestMessage::Flush)
    }

    fn reshard(&mut self, plan: &ReshardPlan, mode: HandoverMode) -> Result<(), ServeError> {
        self.send_frame(IngestMessage::Reshard(plan.clone(), mode))
    }

    /// Sends a `Lookup` frame and blocks for its `Found` reply. Lookups
    /// take no window slot and no acknowledgement — but acknowledgements
    /// for previously pipelined write frames may arrive first (the server
    /// replies strictly in request order), so they are absorbed here.
    fn lookup(&mut self, element: ElementId) -> Result<LookupAnswer, ServeError> {
        write_frame(
            &mut self.writer,
            &Frame::Lookup { element },
            &mut self.write_scratch,
        )?;
        loop {
            match read_frame(&mut self.reader, &mut self.read_scratch)? {
                Some(Frame::Found(answer)) => {
                    if answer.element != element {
                        return Err(WireError::Malformed {
                            reason: "found frame answers a different element",
                        }
                        .into());
                    }
                    return Ok(answer);
                }
                Some(Frame::Ack { seq }) => self.note_ack(seq)?,
                Some(_) => {
                    return Err(WireError::Malformed {
                        reason: "expected a found or acknowledgement frame",
                    }
                    .into())
                }
                None => return Err(ServeError::Closed),
            }
        }
    }

    /// Sends a `Stats` frame and blocks for its `StatsReply`. Like
    /// [`lookup`](Ingest::lookup), a stats poll takes no window slot and
    /// absorbs any acknowledgements for pipelined write frames that arrive
    /// ahead of the reply.
    fn stats(&mut self) -> Result<MetricsSnapshot, ServeError> {
        write_frame(&mut self.writer, &Frame::Stats, &mut self.write_scratch)?;
        loop {
            match read_frame(&mut self.reader, &mut self.read_scratch)? {
                Some(Frame::StatsReply(snapshot)) => return Ok(snapshot),
                Some(Frame::Ack { seq }) => self.note_ack(seq)?,
                Some(_) => {
                    return Err(WireError::Malformed {
                        reason: "expected a stats reply or acknowledgement frame",
                    }
                    .into())
                }
                None => return Err(ServeError::Closed),
            }
        }
    }
}

impl fmt::Debug for TcpIngest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpIngest")
            .field("peer", &self.writer.peer_addr().ok())
            .field("sent", &self.sent)
            .field("acked", &self.acked)
            .field("window", &self.window)
            .finish()
    }
}

/// The outcome of one served connection.
#[derive(Debug)]
pub struct ConnectionReport {
    /// The connection's accept-order index.
    pub connection: u64,
    /// Ingest frames accepted from this connection into the engine queue.
    pub frames: u64,
    /// Lookups answered from the published snapshot (never enqueued).
    pub lookups: u64,
    /// The error that closed the connection, if it did not end cleanly.
    /// Disconnects ([`ServeError::is_disconnect`]) are recorded here too —
    /// a client vanishing mid-burst is an observation, not a server
    /// failure.
    pub error: Option<ServeError>,
}

impl ConnectionReport {
    /// Whether the connection ran the full protocol to a clean end of
    /// stream.
    pub fn is_clean(&self) -> bool {
        self.error.is_none()
    }
}

/// Serves one established connection: ingest frames are forwarded into the
/// engine's bounded channel (blocking there is what propagates engine
/// backpressure onto the socket) and acknowledged once enqueued; lookup
/// frames are answered on the spot from `reads`' published snapshot,
/// without ever touching the channel. Returns the accepted-frame and
/// answered-lookup counts and the error that ended the connection, if any.
fn serve_connection(
    stream: &TcpStream,
    sender: &IngestSender,
    mut reads: Option<SnapshotReader>,
) -> (u64, u64, Option<ServeError>) {
    let metrics = sender.metrics().cloned();
    let mut frames = 0u64;
    let mut lookups = 0u64;
    let mut error = None;
    let outcome = (|| -> Result<(), ServeError> {
        stream.set_nodelay(true)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        let mut read_scratch = Vec::new();
        let mut write_scratch = Vec::new();
        while let Some(frame) = read_frame(&mut reader, &mut read_scratch)? {
            if let Some(metrics) = &metrics {
                // The body sits in `read_scratch`; the length prefix adds 4.
                metrics.note_wire_frame(frame.tag(), read_scratch.len() + 4);
            }
            let reply = match frame {
                Frame::Ingest(message) => {
                    sender.send_message(message)?;
                    frames += 1;
                    Frame::Ack { seq: frames }
                }
                Frame::Lookup { element } => {
                    let reader = reads.as_mut().ok_or(ServeError::LookupUnsupported)?;
                    let universe = reader.snapshot().partition().universe();
                    let answer = reader
                        .lookup(element)
                        .ok_or(ServeError::OutOfUniverse { element, universe })?;
                    lookups += 1;
                    Frame::Found(answer)
                }
                Frame::Stats => {
                    let metrics = metrics.as_ref().ok_or(ServeError::StatsUnsupported)?;
                    Frame::StatsReply(metrics.snapshot())
                }
                Frame::Ack { .. } | Frame::Found(_) | Frame::StatsReply(_) => {
                    return Err(WireError::Malformed {
                        reason: "clients may not send server reply frames",
                    }
                    .into())
                }
            };
            write_frame(&mut writer, &reply, &mut write_scratch)?;
            if let Some(metrics) = &metrics {
                // `write_scratch` holds the full encoding, prefix included.
                metrics.note_wire_frame(reply.tag(), write_scratch.len());
            }
        }
        Ok(())
    })();
    if let Err(cause) = outcome {
        // Closing the read side unblocks a client still writing frames.
        let _ = stream.shutdown(Shutdown::Both);
        error = Some(cause);
    }
    (frames, lookups, error)
}

/// Appends one report, recovering the vector from a poisoned lock: a
/// panicking connection worker must not take the whole accept loop (and
/// every other connection's report) down with it — per-connection failure
/// isolation extends to panics.
fn record_report(reports: &Mutex<Vec<ConnectionReport>>, report: ConnectionReport) {
    reports
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(report);
}

/// The server-side accept loop: accepts exactly `connections` connections
/// from `listener` and serves each on the scoped [`task_scope_instrumented`]
/// pool with up to `parallelism` concurrent connection workers (feeding the
/// engine's pool gauges when the sender carries a registry), forwarding every
/// decoded ingest frame into `sender`'s bounded channel. When `reads` is
/// given, each worker gets its own clone of the [`SnapshotReader`] and
/// answers `Lookup` frames lock-free from the engine's published snapshot;
/// without it, a lookup closes its connection with
/// [`ServeError::LookupUnsupported`]. Returns one [`ConnectionReport`] per
/// connection, in accept order.
///
/// Per-connection failures (malformed frames, vanished clients, even a
/// panicking worker) are **contained**: they appear in that connection's
/// report while every other connection and the engine keep running. Only
/// listener-level failures — `accept` itself erroring — abort the loop.
///
/// # Errors
///
/// [`ServeError::Io`] if accepting a connection fails; already-accepted
/// connections still run to completion (their reports are lost with the
/// error, but their frames reached the channel).
pub fn serve_connections(
    listener: &TcpListener,
    sender: &IngestSender,
    reads: Option<&SnapshotReader>,
    parallelism: Parallelism,
    connections: usize,
) -> Result<Vec<ConnectionReport>, ServeError> {
    let reports: Mutex<Vec<ConnectionReport>> = Mutex::new(Vec::with_capacity(connections));
    let metrics = sender.metrics();
    let pool = metrics.map(|metrics| &metrics.pool);
    task_scope_instrumented(parallelism, pool, |scope| -> Result<(), ServeError> {
        for connection in 0..connections as u64 {
            let (stream, _peer) = listener.accept()?;
            if let Some(metrics) = metrics {
                metrics.connections_total.inc();
            }
            let sender = sender.clone();
            // Each worker reads through its own independently cached handle.
            let reads = reads.cloned();
            let reports = &reports;
            scope.spawn(move || {
                let metrics = sender.metrics().cloned();
                if let Some(metrics) = &metrics {
                    metrics.connections_active.inc();
                }
                let (frames, lookups, error) = serve_connection(&stream, &sender, reads);
                if let Some(metrics) = &metrics {
                    metrics.connections_active.dec();
                }
                record_report(
                    reports,
                    ConnectionReport {
                        connection,
                        frames,
                        lookups,
                        error,
                    },
                );
            });
        }
        Ok(())
    })?;
    let mut reports = reports.into_inner().unwrap_or_else(PoisonError::into_inner);
    reports.sort_unstable_by_key(|report| report.connection);
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::ingest_channel;
    use std::net::{Ipv4Addr, SocketAddr};

    fn loopback_listener() -> (TcpListener, SocketAddr) {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        (listener, addr)
    }

    #[test]
    fn frames_cross_the_wire_in_order() {
        let (listener, addr) = loopback_listener();
        let (sender, queue) = ingest_channel(64);
        let server = std::thread::spawn(move || {
            serve_connections(&listener, &sender, None, Parallelism::Serial, 1).unwrap()
        });
        let mut client = TcpIngest::connect(addr).unwrap();
        client.send(ElementId::new(5)).unwrap();
        client
            .send_burst(&[ElementId::new(6), ElementId::new(7)])
            .unwrap();
        client.flush().unwrap();
        client
            .reshard(
                &ReshardPlan::new([(ElementId::new(1), 2)]),
                HandoverMode::Warm,
            )
            .unwrap();
        assert_eq!(client.finish().unwrap(), 4);
        let reports = server.join().unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].is_clean(), "{:?}", reports[0].error);
        assert_eq!(reports[0].frames, 4);

        assert_eq!(
            queue.recv(),
            Some(IngestMessage::Request(ElementId::new(5)))
        );
        assert_eq!(
            queue.recv(),
            Some(IngestMessage::Burst(vec![
                ElementId::new(6),
                ElementId::new(7)
            ]))
        );
        assert_eq!(queue.recv(), Some(IngestMessage::Flush));
        assert_eq!(
            queue.recv(),
            Some(IngestMessage::Reshard(
                ReshardPlan::new([(ElementId::new(1), 2)]),
                HandoverMode::Warm
            ))
        );
        assert_eq!(queue.recv(), None);
    }

    #[test]
    fn acknowledgements_only_follow_enqueued_frames() {
        // Capacity-1 channel, window-1 client: every acknowledged frame is
        // already sitting in the queue when the ack arrives, so a recv right
        // after `drain_acks` returns it without any waiting.
        let (listener, addr) = loopback_listener();
        let (sender, queue) = ingest_channel(1);
        let server = std::thread::spawn(move || {
            serve_connections(&listener, &sender, None, Parallelism::Serial, 1).unwrap()
        });
        let mut client = TcpIngest::connect(addr).unwrap().with_window(1);
        client.send(ElementId::new(0)).unwrap();
        assert_eq!(client.drain_acks().unwrap(), 1);
        assert_eq!(
            queue.recv(),
            Some(IngestMessage::Request(ElementId::new(0)))
        );
        // Further frames need the drainer: the full channel stalls the
        // server's ack, which stalls the window-1 client — backpressure
        // reaches all the way back to `send`.
        let drainer = std::thread::spawn(move || {
            let mut received = Vec::new();
            while let Some(message) = queue.recv() {
                received.push(message);
            }
            received
        });
        client.send(ElementId::new(1)).unwrap();
        client.send(ElementId::new(2)).unwrap();
        assert!(client.acked() >= 1);
        assert_eq!(client.finish().unwrap(), 3);
        let reports = server.join().unwrap();
        assert_eq!(reports[0].frames, 3);
        assert_eq!(drainer.join().unwrap().len(), 2);
    }

    #[test]
    fn lookups_without_a_server_side_reader_close_only_that_connection() {
        let (listener, addr) = loopback_listener();
        let (sender, queue) = ingest_channel(16);
        let server = std::thread::spawn(move || {
            serve_connections(&listener, &sender, None, Parallelism::Serial, 2).unwrap()
        });
        // Connection 0 issues a lookup the server cannot serve: the server
        // closes it, surfacing the failure client-side too.
        let mut reading = TcpIngest::connect(addr).unwrap();
        assert!(Ingest::lookup(&mut reading, ElementId::new(0)).is_err());
        drop(reading);
        // Connection 1 still writes normally: failure isolation held.
        let mut writing = TcpIngest::connect(addr).unwrap();
        writing.send(ElementId::new(3)).unwrap();
        assert_eq!(writing.finish().unwrap(), 1);
        let reports = server.join().unwrap();
        assert!(matches!(
            reports[0].error,
            Some(ServeError::LookupUnsupported)
        ));
        assert!(reports[1].is_clean(), "{:?}", reports[1].error);
        drop(queue);
    }

    #[test]
    fn poisoned_report_locks_are_recovered_not_propagated() {
        // Poison the mutex exactly the way a panicking worker would: by
        // panicking while holding the guard.
        let reports = Mutex::new(vec![ConnectionReport {
            connection: 0,
            frames: 1,
            lookups: 0,
            error: None,
        }]);
        let poisoner = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = reports.lock().unwrap();
            panic!("worker panic while holding the report lock");
        }));
        assert!(poisoner.is_err());
        assert!(
            reports.is_poisoned(),
            "the panic must have poisoned the lock"
        );

        // The accept loop's recording path shrugs it off — the prior report
        // survives and the new one lands.
        record_report(
            &reports,
            ConnectionReport {
                connection: 1,
                frames: 7,
                lookups: 2,
                error: None,
            },
        );
        let collected = reports.into_inner().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[1].frames, 7);
        assert_eq!(collected[1].lookups, 2);
    }

    #[test]
    fn stats_polls_cross_the_wire_and_count_traffic() {
        use crate::ingest::ingest_channel_with_metrics;
        use satn_obs::{names, EngineMetrics};
        use std::sync::Arc;

        let (listener, addr) = loopback_listener();
        let metrics = Arc::new(EngineMetrics::new(2));
        let (sender, queue) = ingest_channel_with_metrics(16, Arc::clone(&metrics));
        let server = std::thread::spawn(move || {
            serve_connections(&listener, &sender, None, Parallelism::Serial, 1).unwrap()
        });
        let drainer = std::thread::spawn(move || while queue.recv().is_some() {});
        let mut client = TcpIngest::connect(addr).unwrap();
        client.send(ElementId::new(5)).unwrap();
        let snapshot = Ingest::stats(&mut client).unwrap();
        assert_eq!(snapshot.counter(names::CONNECTIONS_TOTAL), Some(1));
        assert_eq!(snapshot.gauge(names::CONNECTIONS_ACTIVE), Some(1));
        // One Request frame (tag 0) and one Stats frame (tag 7) arrived
        // before the snapshot froze; the reply itself is not yet counted.
        assert_eq!(snapshot.counter(&names::wire_frames(0)), Some(1));
        assert_eq!(snapshot.counter(&names::wire_frames(7)), Some(1));
        assert!(snapshot.counter(&names::wire_bytes(0)).unwrap() >= 9);
        assert_eq!(client.finish().unwrap(), 1);
        let reports = server.join().unwrap();
        assert!(reports[0].is_clean(), "{:?}", reports[0].error);
        drainer.join().unwrap();
        // After the connection wound down the live registry shows it gone,
        // and the server's replies (acks + the stats reply) were counted.
        assert_eq!(metrics.connections_active.get(), 0);
        assert_eq!(metrics.wire_frames[4].get(), 1, "one cumulative ack");
        assert_eq!(metrics.wire_frames[8].get(), 1, "one stats reply");
    }

    #[test]
    fn bursts_beyond_the_frame_cap_are_split_client_side() {
        // A tiny window forces the split frames to interleave with acks,
        // exercising the windowed path as well as the chunking itself.
        let (listener, addr) = loopback_listener();
        let (sender, queue) = ingest_channel(64);
        let server = std::thread::spawn(move || {
            serve_connections(&listener, &sender, None, Parallelism::Serial, 1).unwrap()
        });
        let burst: Vec<ElementId> = (0..2 * MAX_BURST_ELEMENTS as u32 + 3)
            .map(ElementId::new)
            .collect();
        let mut client = TcpIngest::connect(addr).unwrap().with_window(2);
        let drainer = {
            let expected = burst.clone();
            std::thread::spawn(move || {
                let mut received = Vec::new();
                while let Some(IngestMessage::Burst(chunk)) = queue.recv() {
                    received.extend(chunk);
                }
                assert_eq!(received, expected, "split bursts must reassemble exactly");
            })
        };
        Ingest::send_burst(&mut client, &burst).unwrap();
        assert_eq!(client.finish().unwrap(), 3, "three frames, not one");
        let reports = server.join().unwrap();
        assert!(reports[0].is_clean(), "{:?}", reports[0].error);
        assert_eq!(reports[0].frames, 3);
        drainer.join().unwrap();
    }
}
