//! The TCP transport of the ingestion protocol: the client-side
//! [`TcpIngest`] implementor of [`Ingest`] and the server-side accept loop
//! feeding an [`IngestSender`].
//!
//! ```text
//!  client                         server (satnd)
//!  ───────                        ──────────────────────────────────────
//!  TcpIngest ── frames ──▶ accept loop (task_scope worker per connection)
//!      ▲                        │ decode, forward
//!      └────── Ack{seq} ────────┤
//!                               ▼ bounded channel (backpressure)
//!                          IngestSender ──▶ IngestQueue ──▶ ShardedEngine
//! ```
//!
//! **Backpressure end to end:** the server acknowledges a frame only after
//! it is accepted by the bounded ingest channel, and the client sends at
//! most `window` unacknowledged frames before blocking on acks. A slow
//! engine therefore stalls the channel, which stalls acknowledgements,
//! which stalls every client — no unbounded buffering anywhere.
//!
//! **Determinism:** the engine behind the queue never knows which transport
//! a message crossed, so a single connection replaying a stream in order is
//! bit-identical to the same stream submitted in-process (asserted by
//! `tests/net_determinism.rs` and the `satnd --verify` oracle). Multiple
//! concurrent connections interleave at the channel exactly like multiple
//! in-process producers do: each connection's own frame order is preserved.
//!
//! **Failure isolation:** a malformed frame or I/O error closes only its
//! own connection (reported per connection in [`ConnectionReport`]); the
//! engine and the other connections keep running.

use crate::error::ServeError;
use crate::ingest::{Ingest, IngestMessage, IngestSender};
use crate::wire::{read_frame, write_frame, Frame, WireError};
use satn_exec::{task_scope, Parallelism};
use satn_tree::ElementId;
use satn_workloads::shard::ReshardPlan;
use std::fmt;
use std::io::BufReader;
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Mutex;

/// Default number of unacknowledged frames a [`TcpIngest`] keeps in flight.
pub const DEFAULT_WINDOW: usize = 32;

/// The TCP implementor of [`Ingest`]: encodes protocol messages as wire
/// frames on a connection to a `satnd` server, pipelining up to `window`
/// frames ahead of the server's cumulative acknowledgements.
pub struct TcpIngest {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    write_scratch: Vec<u8>,
    read_scratch: Vec<u8>,
    sent: u64,
    acked: u64,
    window: usize,
}

impl TcpIngest {
    /// Connects to a `satnd` server.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(TcpIngest {
            reader,
            writer,
            write_scratch: Vec::new(),
            read_scratch: Vec::new(),
            sent: 0,
            acked: 0,
            window: DEFAULT_WINDOW,
        })
    }

    /// Overrides the pipelining window (builder style). A window of 1 makes
    /// every frame a synchronous round trip.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero (nothing could ever be sent).
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window > 0, "the pipelining window must be positive");
        self.window = window;
        self
    }

    /// Frames sent so far on this connection.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Frames the server has acknowledged so far (cumulative). An ack means
    /// the frame was accepted into the engine's ingest queue.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Reads one acknowledgement frame from the server.
    fn recv_ack(&mut self) -> Result<(), ServeError> {
        match read_frame(&mut self.reader, &mut self.read_scratch)? {
            Some(Frame::Ack { seq }) => {
                if seq <= self.acked || seq > self.sent {
                    return Err(WireError::Malformed {
                        reason: "acknowledgement sequence out of range",
                    }
                    .into());
                }
                self.acked = seq;
                Ok(())
            }
            Some(_) => Err(WireError::Malformed {
                reason: "the server may only send acknowledgement frames",
            }
            .into()),
            None => Err(ServeError::Closed),
        }
    }

    fn send_frame(&mut self, message: IngestMessage) -> Result<(), ServeError> {
        while self.sent - self.acked >= self.window as u64 {
            self.recv_ack()?;
        }
        write_frame(
            &mut self.writer,
            &Frame::Ingest(message),
            &mut self.write_scratch,
        )?;
        self.sent += 1;
        Ok(())
    }

    /// Waits until every sent frame is acknowledged (without closing the
    /// connection), then returns the count — the network analogue of a
    /// producer observing that its sends were all accepted.
    ///
    /// # Errors
    ///
    /// Any transport or protocol error while draining acknowledgements.
    pub fn drain_acks(&mut self) -> Result<u64, ServeError> {
        while self.acked < self.sent {
            self.recv_ack()?;
        }
        Ok(self.acked)
    }

    /// Performs the orderly shutdown handshake: drains all outstanding
    /// acknowledgements, half-closes the write side (the server sees a
    /// clean end of stream, exactly like the last in-process sender
    /// dropping), and waits for the server to close its side. Returns the
    /// total number of acknowledged frames.
    ///
    /// # Errors
    ///
    /// Any transport or protocol error during the handshake.
    pub fn finish(mut self) -> Result<u64, ServeError> {
        self.drain_acks()?;
        self.writer.shutdown(Shutdown::Write)?;
        match read_frame(&mut self.reader, &mut self.read_scratch)? {
            None => Ok(self.acked),
            Some(_) => Err(WireError::Malformed {
                reason: "unexpected frame after the shutdown handshake",
            }
            .into()),
        }
    }
}

impl Ingest for TcpIngest {
    fn send(&mut self, element: ElementId) -> Result<(), ServeError> {
        self.send_frame(IngestMessage::Request(element))
    }

    fn send_burst(&mut self, burst: &[ElementId]) -> Result<(), ServeError> {
        self.send_frame(IngestMessage::Burst(burst.to_vec()))
    }

    fn flush(&mut self) -> Result<(), ServeError> {
        self.send_frame(IngestMessage::Flush)
    }

    fn reshard(&mut self, plan: &ReshardPlan) -> Result<(), ServeError> {
        self.send_frame(IngestMessage::Reshard(plan.clone()))
    }
}

impl fmt::Debug for TcpIngest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpIngest")
            .field("peer", &self.writer.peer_addr().ok())
            .field("sent", &self.sent)
            .field("acked", &self.acked)
            .field("window", &self.window)
            .finish()
    }
}

/// The outcome of one served connection.
#[derive(Debug)]
pub struct ConnectionReport {
    /// The connection's accept-order index.
    pub connection: u64,
    /// Ingest frames accepted from this connection into the engine queue.
    pub frames: u64,
    /// The error that closed the connection, if it did not end cleanly.
    /// Disconnects ([`ServeError::is_disconnect`]) are recorded here too —
    /// a client vanishing mid-burst is an observation, not a server
    /// failure.
    pub error: Option<ServeError>,
}

impl ConnectionReport {
    /// Whether the connection ran the full protocol to a clean end of
    /// stream.
    pub fn is_clean(&self) -> bool {
        self.error.is_none()
    }
}

/// Serves one established connection: decodes frames, forwards them into
/// the engine's bounded ingest channel (blocking there is what propagates
/// engine backpressure onto the socket), and acknowledges each frame once
/// enqueued. Returns the number of frames accepted and the error that ended
/// the connection, if any.
fn serve_connection(stream: &TcpStream, sender: &IngestSender) -> (u64, Option<ServeError>) {
    let mut frames = 0u64;
    let mut error = None;
    let outcome = (|| -> Result<(), ServeError> {
        stream.set_nodelay(true)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        let mut read_scratch = Vec::new();
        let mut write_scratch = Vec::new();
        while let Some(frame) = read_frame(&mut reader, &mut read_scratch)? {
            let Frame::Ingest(message) = frame else {
                return Err(WireError::Malformed {
                    reason: "clients may not send acknowledgement frames",
                }
                .into());
            };
            sender.send_message(message)?;
            frames += 1;
            write_frame(&mut writer, &Frame::Ack { seq: frames }, &mut write_scratch)?;
        }
        Ok(())
    })();
    if let Err(cause) = outcome {
        // Closing the read side unblocks a client still writing frames.
        let _ = stream.shutdown(Shutdown::Both);
        error = Some(cause);
    }
    (frames, error)
}

/// The server-side accept loop: accepts exactly `connections` connections
/// from `listener` and serves each on the scoped [`task_scope`] pool with
/// up to `parallelism` concurrent connection workers, forwarding every
/// decoded frame into `sender`'s bounded channel. Returns one
/// [`ConnectionReport`] per connection, in accept order.
///
/// Per-connection failures (malformed frames, vanished clients) are
/// **contained**: they appear in that connection's report while every other
/// connection and the engine keep running. Only listener-level failures —
/// `accept` itself erroring — abort the loop.
///
/// # Errors
///
/// [`ServeError::Io`] if accepting a connection fails; already-accepted
/// connections still run to completion (their reports are lost with the
/// error, but their frames reached the channel).
pub fn serve_connections(
    listener: &TcpListener,
    sender: &IngestSender,
    parallelism: Parallelism,
    connections: usize,
) -> Result<Vec<ConnectionReport>, ServeError> {
    let reports: Mutex<Vec<ConnectionReport>> = Mutex::new(Vec::with_capacity(connections));
    task_scope(parallelism, |scope| -> Result<(), ServeError> {
        for connection in 0..connections as u64 {
            let (stream, _peer) = listener.accept()?;
            let sender = sender.clone();
            let reports = &reports;
            scope.spawn(move || {
                let (frames, error) = serve_connection(&stream, &sender);
                reports
                    .lock()
                    .expect("report lock never poisons")
                    .push(ConnectionReport {
                        connection,
                        frames,
                        error,
                    });
            });
        }
        Ok(())
    })?;
    let mut reports = reports.into_inner().expect("report lock never poisons");
    reports.sort_unstable_by_key(|report| report.connection);
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::ingest_channel;
    use std::net::{Ipv4Addr, SocketAddr};

    fn loopback_listener() -> (TcpListener, SocketAddr) {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        (listener, addr)
    }

    #[test]
    fn frames_cross_the_wire_in_order() {
        let (listener, addr) = loopback_listener();
        let (sender, queue) = ingest_channel(64);
        let server = std::thread::spawn(move || {
            serve_connections(&listener, &sender, Parallelism::Serial, 1).unwrap()
        });
        let mut client = TcpIngest::connect(addr).unwrap();
        client.send(ElementId::new(5)).unwrap();
        client
            .send_burst(&[ElementId::new(6), ElementId::new(7)])
            .unwrap();
        client.flush().unwrap();
        client
            .reshard(&ReshardPlan::new([(ElementId::new(1), 2)]))
            .unwrap();
        assert_eq!(client.finish().unwrap(), 4);
        let reports = server.join().unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].is_clean(), "{:?}", reports[0].error);
        assert_eq!(reports[0].frames, 4);

        assert_eq!(
            queue.recv(),
            Some(IngestMessage::Request(ElementId::new(5)))
        );
        assert_eq!(
            queue.recv(),
            Some(IngestMessage::Burst(vec![
                ElementId::new(6),
                ElementId::new(7)
            ]))
        );
        assert_eq!(queue.recv(), Some(IngestMessage::Flush));
        assert_eq!(
            queue.recv(),
            Some(IngestMessage::Reshard(ReshardPlan::new([(
                ElementId::new(1),
                2
            )])))
        );
        assert_eq!(queue.recv(), None);
    }

    #[test]
    fn acknowledgements_only_follow_enqueued_frames() {
        // Capacity-1 channel, window-1 client: every acknowledged frame is
        // already sitting in the queue when the ack arrives, so a recv right
        // after `drain_acks` returns it without any waiting.
        let (listener, addr) = loopback_listener();
        let (sender, queue) = ingest_channel(1);
        let server = std::thread::spawn(move || {
            serve_connections(&listener, &sender, Parallelism::Serial, 1).unwrap()
        });
        let mut client = TcpIngest::connect(addr).unwrap().with_window(1);
        client.send(ElementId::new(0)).unwrap();
        assert_eq!(client.drain_acks().unwrap(), 1);
        assert_eq!(
            queue.recv(),
            Some(IngestMessage::Request(ElementId::new(0)))
        );
        // Further frames need the drainer: the full channel stalls the
        // server's ack, which stalls the window-1 client — backpressure
        // reaches all the way back to `send`.
        let drainer = std::thread::spawn(move || {
            let mut received = Vec::new();
            while let Some(message) = queue.recv() {
                received.push(message);
            }
            received
        });
        client.send(ElementId::new(1)).unwrap();
        client.send(ElementId::new(2)).unwrap();
        assert!(client.acked() >= 1);
        assert_eq!(client.finish().unwrap(), 3);
        let reports = server.join().unwrap();
        assert_eq!(reports[0].frames, 3);
        assert_eq!(drainer.join().unwrap().len(), 2);
    }
}
