//! Lock-free snapshot reads: the read phase of the serving protocol.
//!
//! The paper's self-adjusting trees mutate on every access, so writes must
//! serialize through each shard's single-writer drain path. Pure lookups do
//! not: at every batch-drain boundary the engine freezes an
//! [`EngineSnapshot`] — the current epoch's partition plus one immutable
//! [`TreeSnapshot`] per shard — and publishes it through a [`SnapshotHub`]
//! with an atomic version-stamped pointer swap. Any number of
//! [`SnapshotReader`] handles then serve lookups against the published
//! snapshot without acquiring the drain path, a queue slot, or (in steady
//! state) any lock at all.
//!
//! ```text
//!            writes (serialized)                 reads (lock-free)
//!  ingest ──▶ ShardedEngine ── drain ──▶ publish ──▶ SnapshotHub
//!             per-shard batches          Arc swap     │ version: AtomicU64
//!             serve_batch                + version    ▼
//!                                                  SnapshotReader*
//!                                                  (cached Arc; refreshes
//!                                                   only when the version
//!                                                   moved)
//! ```
//!
//! The idiom is a simplified epoch-based-reclamation guard: because readers
//! only ever *clone an `Arc`* (never borrow into the writer's state), no
//! reader can block or be blocked by a publication — the publisher swaps the
//! pointer and bumps the version; stale snapshots are freed when the last
//! reader drops its clone. A reader's steady-state lookup is one atomic
//! load (version check) plus two array reads; the tiny publication mutex is
//! touched only when the version has actually moved — at most once per
//! drain.
//!
//! **Determinism stays derived:** reads never mutate, so the write-side
//! oracle is untouched; and every snapshot is stamped with the number of
//! requests accounted when it was frozen, so a lookup answered from
//! snapshot stamp `k` must equal the serial reference replay of the first
//! `k` requests — which is exactly what `tests/snapshot_reads.rs` asserts
//! at every thread count.

use satn_obs::EngineMetrics;
use satn_tree::{ElementId, NodeId, TreeSnapshot};
use satn_workloads::shard::Partition;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// The answer to one snapshot lookup: where the element sat in the
/// published snapshot, and which snapshot answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupAnswer {
    /// The element that was looked up.
    pub element: ElementId,
    /// The shard that owned the element under the snapshot's partition.
    pub shard: u32,
    /// The node (within the owning shard's tree) that held the element.
    pub node: NodeId,
    /// The partition epoch the snapshot was taken under.
    pub epoch: u32,
    /// Requests the engine had served and accounted when the snapshot was
    /// frozen — the lookup's position on the deterministic write timeline.
    pub served: u64,
}

impl LookupAnswer {
    /// The level the element sat at (root = 0).
    #[inline]
    pub fn level(&self) -> u32 {
        self.node.level()
    }

    /// The access cost `ℓ(e) + 1` the element would pay if requested now.
    #[inline]
    pub fn access_cost(&self) -> u64 {
        self.level() as u64 + 1
    }
}

/// One frozen, immutable view of a whole engine: the epoch's partition and
/// every shard's [`TreeSnapshot`], stamped with the write-timeline position
/// it was taken at.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    epoch: u32,
    served: u64,
    partition: Arc<Partition>,
    shards: Vec<TreeSnapshot>,
}

impl EngineSnapshot {
    /// Assembles a snapshot. `partition` is shared (`Arc`) because it only
    /// changes at epoch boundaries while snapshots are published at every
    /// drain.
    pub(crate) fn assemble(
        epoch: u32,
        served: u64,
        partition: Arc<Partition>,
        shards: Vec<TreeSnapshot>,
    ) -> Self {
        debug_assert_eq!(partition.shards() as usize, shards.len());
        EngineSnapshot {
            epoch,
            served,
            partition,
            shards,
        }
    }

    /// The partition epoch the snapshot was taken under.
    #[inline]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Requests served and accounted when the snapshot was frozen.
    #[inline]
    pub fn served(&self) -> u64 {
        self.served
    }

    /// The element-to-shard assignment of the snapshot's epoch.
    #[inline]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// One shard's frozen tree.
    ///
    /// # Panics
    ///
    /// Panics if the shard is out of range.
    #[inline]
    pub fn shard(&self, shard: u32) -> &TreeSnapshot {
        &self.shards[shard as usize]
    }

    /// The replay fingerprint of one shard at snapshot time — byte-identical
    /// to what the engine (or the serial reference replay) would report had
    /// the run stopped at this snapshot's drain boundary.
    ///
    /// # Panics
    ///
    /// Panics if the shard is out of range.
    pub fn fingerprint(&self, shard: u32) -> String {
        self.shards[shard as usize].fingerprint()
    }

    /// Answers a lookup from this snapshot: routes the element under the
    /// snapshot's partition and reads its node out of the owning shard's
    /// frozen tree. `None` for elements outside the universe.
    pub fn lookup(&self, element: ElementId) -> Option<LookupAnswer> {
        let (shard, local) = self.partition.localize(element)?;
        let node = self.shards[shard as usize].node_of(local)?;
        Some(LookupAnswer {
            element,
            shard,
            node,
            epoch: self.epoch,
            served: self.served,
        })
    }
}

/// The publication point writers swap snapshots through: an `Arc` slot plus
/// an atomic version counter. One hub is shared by the publishing engine and
/// every [`SnapshotReader`] cloned from it.
pub(crate) struct SnapshotHub {
    /// Bumped (release) on every publication; readers check it (acquire)
    /// to decide whether their cached `Arc` is still current.
    version: AtomicU64,
    /// The current snapshot. The mutex only guards the pointer swap and the
    /// reader's occasional re-clone — never a lookup.
    current: Mutex<Arc<EngineSnapshot>>,
    /// The engine's registry, so readers can count answered lookups and
    /// compare the live served counter against their snapshot's stamp.
    metrics: Arc<EngineMetrics>,
}

impl SnapshotHub {
    pub(crate) fn new(initial: EngineSnapshot, metrics: Arc<EngineMetrics>) -> Self {
        SnapshotHub {
            version: AtomicU64::new(1),
            current: Mutex::new(Arc::new(initial)),
            metrics,
        }
    }

    /// Atomically replaces the published snapshot, returning the new
    /// version. Readers never block this: the critical section is one
    /// pointer store.
    pub(crate) fn publish(&self, snapshot: EngineSnapshot) -> u64 {
        let mut slot = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        *slot = Arc::new(snapshot);
        // Bump while still holding the lock so a reader that observes the
        // new version and then locks always finds the snapshot that (or a
        // newer one than) the version promised.
        self.version.fetch_add(1, Ordering::Release) + 1
    }

    fn load(&self) -> (u64, Arc<EngineSnapshot>) {
        let slot = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        let snapshot = Arc::clone(&slot);
        // Read the version under the lock: the pair is consistent.
        (self.version.load(Ordering::Acquire), snapshot)
    }

    fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

impl fmt::Debug for SnapshotHub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotHub")
            .field("version", &self.version())
            .finish_non_exhaustive()
    }
}

/// A read handle serving lock-free lookups against the engine's most
/// recently published snapshot.
///
/// Obtain one from [`ShardedEngine::snapshots`](crate::ShardedEngine::snapshots)
/// and clone it freely — each clone caches its own `Arc` to the current
/// snapshot, so the steady-state path of [`SnapshotReader::snapshot`] (and
/// everything built on it) is a single atomic version check with **no lock
/// and no allocation**; the publication mutex is touched only when a drain
/// has actually published a newer snapshot since the handle last looked.
///
/// Readers never block the engine and the engine never blocks readers: a
/// reader holds (a clone of) an immutable snapshot while the writer swaps in
/// new ones. Reads are therefore *stale-bounded*, not stale-unbounded — a
/// lookup reflects the tree state at the latest batch-drain boundary, which
/// is exactly the granularity at which the deterministic write timeline is
/// defined.
#[derive(Debug)]
pub struct SnapshotReader {
    hub: Arc<SnapshotHub>,
    cached_version: u64,
    cached: Arc<EngineSnapshot>,
}

impl SnapshotReader {
    pub(crate) fn new(hub: Arc<SnapshotHub>) -> Self {
        let (version, snapshot) = hub.load();
        SnapshotReader {
            hub,
            cached_version: version,
            cached: snapshot,
        }
    }

    /// The current snapshot (refreshing the cache only if a newer one has
    /// been published). The returned reference is valid until the next call
    /// on this handle; clone the `Arc` to hold a snapshot across calls.
    pub fn snapshot(&mut self) -> &Arc<EngineSnapshot> {
        let version = self.hub.version();
        if version != self.cached_version {
            let (version, snapshot) = self.hub.load();
            self.cached_version = version;
            self.cached = snapshot;
        }
        &self.cached
    }

    /// Answers one lookup against the current snapshot — the lock-free read
    /// path. `None` for elements outside the engine's universe. Answered
    /// lookups count into the engine's `lookups_answered` metric (one
    /// relaxed atomic add — the path stays lock- and allocation-free).
    pub fn lookup(&mut self, element: ElementId) -> Option<LookupAnswer> {
        let answer = self.snapshot().lookup(element);
        if answer.is_some() {
            self.hub.metrics.lookups_answered.inc();
        }
        answer
    }

    /// The hub's publication count so far (monotonic; starts at 1 for the
    /// initial snapshot). Mostly useful in tests and diagnostics.
    pub fn version(&self) -> u64 {
        self.hub.version()
    }

    /// How many requests the engine has served *beyond* this reader's
    /// current snapshot — the read side's staleness, in requests. Zero when
    /// the snapshot is current; transiently off by an in-flight drain's
    /// requests otherwise. Refreshes the snapshot cache first, so the figure
    /// is the staleness *after* catching up as far as possible.
    pub fn staleness(&mut self) -> u64 {
        let stamped = self.snapshot().served();
        self.hub
            .metrics
            .requests_served
            .get()
            .saturating_sub(stamped)
    }
}

impl Clone for SnapshotReader {
    /// A fresh handle on the same hub, with its own cache (so clones on
    /// different threads never contend on anything but the hub itself).
    fn clone(&self) -> Self {
        SnapshotReader::new(Arc::clone(&self.hub))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satn_tree::{CompleteTree, Occupancy};
    use satn_workloads::shard::ShardRouter;

    fn snapshot(epoch: u32, served: u64, levels: u32, shards: u32) -> EngineSnapshot {
        let universe = shards * ((1 << levels) - 1);
        let partition = Arc::new(Partition::new(ShardRouter::Range, universe, shards));
        let trees = (0..shards)
            .map(|_| {
                let tree = CompleteTree::with_levels(levels).unwrap();
                TreeSnapshot::capture(&Occupancy::identity(tree))
            })
            .collect();
        EngineSnapshot::assemble(epoch, served, partition, trees)
    }

    fn hub(initial: EngineSnapshot) -> Arc<SnapshotHub> {
        let metrics = Arc::new(EngineMetrics::new(initial.shards()));
        Arc::new(SnapshotHub::new(initial, metrics))
    }

    #[test]
    fn lookups_route_and_localize_under_the_partition() {
        let snap = snapshot(0, 42, 3, 4);
        // Range routing: element 9 is shard 1's local element 2.
        let answer = snap.lookup(ElementId::new(9)).unwrap();
        assert_eq!(answer.shard, 1);
        assert_eq!(answer.node, NodeId::new(2)); // identity placement
        assert_eq!(answer.epoch, 0);
        assert_eq!(answer.served, 42);
        assert_eq!(answer.level(), 1);
        assert_eq!(answer.access_cost(), 2);
        // Outside the 28-element universe.
        assert_eq!(snap.lookup(ElementId::new(28)), None);
    }

    #[test]
    fn readers_see_publications_exactly_once_per_version() {
        let hub = hub(snapshot(0, 0, 3, 2));
        let mut reader = SnapshotReader::new(Arc::clone(&hub));
        assert_eq!(reader.snapshot().served(), 0);
        assert_eq!(reader.version(), 1);

        hub.publish(snapshot(0, 100, 3, 2));
        assert_eq!(reader.version(), 2);
        assert_eq!(reader.snapshot().served(), 100);

        // A held clone of the old snapshot stays valid after publication.
        let held = Arc::clone(reader.snapshot());
        hub.publish(snapshot(1, 200, 3, 2));
        assert_eq!(held.served(), 100);
        assert_eq!(reader.snapshot().served(), 200);
        assert_eq!(reader.snapshot().epoch(), 1);
    }

    #[test]
    fn cloned_readers_have_independent_caches_on_one_hub() {
        let hub = hub(snapshot(0, 0, 3, 2));
        let mut first = SnapshotReader::new(Arc::clone(&hub));
        let mut second = first.clone();
        hub.publish(snapshot(0, 7, 3, 2));
        assert_eq!(first.snapshot().served(), 7);
        assert_eq!(second.snapshot().served(), 7);
    }

    #[test]
    fn lookups_count_and_staleness_tracks_the_live_counter() {
        let hub = hub(snapshot(0, 10, 3, 2));
        let mut reader = SnapshotReader::new(Arc::clone(&hub));
        assert_eq!(reader.lookup(ElementId::new(0)).unwrap().served, 10);
        assert_eq!(reader.lookup(ElementId::new(1)).map(|a| a.shard), Some(0));
        // Misses (outside the universe) are not "answered".
        assert_eq!(reader.lookup(ElementId::new(10_000)), None);
        assert_eq!(hub.metrics.lookups_answered.get(), 2);

        // Snapshot stamped at 10, live counter at 10: no staleness.
        hub.metrics.requests_served.add(10);
        assert_eq!(reader.staleness(), 0);
        // The engine races ahead of the published snapshot.
        hub.metrics.requests_served.add(7);
        assert_eq!(reader.staleness(), 7);
        // A newer publication catches the reader up again.
        hub.publish(snapshot(0, 17, 3, 2));
        assert_eq!(reader.staleness(), 0);
    }

    #[test]
    fn concurrent_readers_never_miss_the_final_publication() {
        let hub = hub(snapshot(0, 0, 4, 2));
        let publications = 500u64;
        std::thread::scope(|scope| {
            let readers: Vec<_> = (0..3)
                .map(|_| {
                    let mut reader = SnapshotReader::new(Arc::clone(&hub));
                    scope.spawn(move || {
                        let mut last = 0;
                        loop {
                            let snap = reader.snapshot();
                            // The served stamp is monotone under publication
                            // order — a reader can skip versions but never
                            // travel back in time.
                            assert!(snap.served() >= last);
                            last = snap.served();
                            if last == publications {
                                return;
                            }
                            std::hint::spin_loop();
                        }
                    })
                })
                .collect();
            for served in 1..=publications {
                hub.publish(snapshot(0, served, 4, 2));
            }
            for reader in readers {
                reader.join().unwrap();
            }
        });
    }
}
