//! The ego-tree-per-source serving mode: source-affinity sharding over
//! `satn-network` ego-trees.
//!
//! In the multi-source composition of the paper's introduction every source
//! host maintains its own self-adjusting ego-tree over the other hosts. That
//! maps onto sharded serving directly: requests `(source, destination)` are
//! routed by [`ShardRouter::SourceAffinity`] (`source mod shards`), so all
//! of one source's requests — and hence all mutations of that source's
//! ego-tree — land on a single shard, and shards drain concurrently with no
//! shared state. Seeds match [`satn_network::SelfAdjustingNetwork`]
//! (`seed + source`), so a serial `SelfAdjustingNetwork` replay of the same
//! trace is a byte-exact oracle for any concurrent run.

use crate::error::ServeError;
use satn_exec::Parallelism;
use satn_network::{EgoTree, Host, HostPair, NetworkError};
use satn_sim::AlgorithmKind;
use satn_tree::{snapshot, CostSummary, ShardedCostSummary};
use satn_workloads::shard::ShardRouter;
use std::fmt;

/// One source-affinity shard: the ego-trees of its owned sources (source `s`
/// is owned by shard `s mod S` and stored at position `s div S`) plus the
/// pending batch of requests.
struct EgoShard {
    trees: Vec<EgoTree>,
    pending: Vec<HostPair>,
}

/// Sharded serving over per-source ego-trees.
pub struct SourceShardedEngine {
    shards: Vec<EgoShard>,
    num_hosts: u32,
    parallelism: Parallelism,
    accounting: ShardedCostSummary,
    control: crate::drain::DrainControl,
}

impl SourceShardedEngine {
    /// Builds an engine of `shards` shards over a network of `num_hosts`
    /// hosts, every ego-tree managed by `kind` and seeded per source with
    /// `seed + source` (the [`satn_network::SelfAdjustingNetwork`]
    /// derivation).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Network`] for invalid sizes or offline
    /// algorithms (which need a trace the streaming engine cannot provide).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(
        num_hosts: u32,
        shards: u32,
        kind: AlgorithmKind,
        seed: u64,
        parallelism: Parallelism,
    ) -> Result<Self, ServeError> {
        assert!(shards > 0, "a partition needs at least one shard");
        let mut built: Vec<EgoShard> = (0..shards)
            .map(|_| EgoShard {
                trees: Vec::new(),
                pending: Vec::new(),
            })
            .collect();
        for source in 0..num_hosts {
            let shard = ShardRouter::SourceAffinity.shard_of_source(source, shards);
            let tree = EgoTree::new(
                Host::new(source),
                num_hosts,
                kind,
                seed.wrapping_add(u64::from(source)),
            )
            .map_err(|error| ServeError::Network { shard, error })?;
            built[shard as usize].trees.push(tree);
        }
        Ok(SourceShardedEngine {
            shards: built,
            num_hosts,
            parallelism,
            accounting: ShardedCostSummary::new(shards),
            control: crate::drain::DrainControl::new(crate::engine::DEFAULT_DRAIN_THRESHOLD),
        })
    }

    /// Overrides the automatic-drain threshold (builder style; never affects
    /// results).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    #[must_use]
    pub fn with_drain_threshold(mut self, threshold: usize) -> Self {
        self.control.set_threshold(threshold);
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Number of hosts in the network.
    pub fn num_hosts(&self) -> u32 {
        self.num_hosts
    }

    /// Requests submitted so far (served or still buffered).
    pub fn submitted(&self) -> u64 {
        self.control.submitted()
    }

    /// Routes one `(source, destination)` request to the shard owning the
    /// source, draining once the buffered total reaches the threshold.
    ///
    /// # Errors
    ///
    /// [`ServeError::Network`] for unknown hosts or self-loops (nothing is
    /// enqueued), or a drain error.
    pub fn submit(&mut self, pair: HostPair) -> Result<(), ServeError> {
        let shard = ShardRouter::SourceAffinity.shard_of_source(pair.source.index(), self.shards());
        if pair.source.index() >= self.num_hosts || pair.destination.index() >= self.num_hosts {
            let host = if pair.source.index() >= self.num_hosts {
                pair.source
            } else {
                pair.destination
            };
            return Err(ServeError::Network {
                shard,
                error: NetworkError::UnknownHost {
                    host,
                    num_hosts: self.num_hosts,
                },
            });
        }
        if pair.source == pair.destination {
            return Err(ServeError::Network {
                shard,
                error: NetworkError::SelfLoop { host: pair.source },
            });
        }
        self.shards[shard as usize].pending.push(pair);
        if self.control.note_submitted() {
            self.drain()?;
        }
        Ok(())
    }

    /// Submits a whole trace in order.
    ///
    /// # Errors
    ///
    /// Same contract as [`SourceShardedEngine::submit`].
    pub fn submit_trace(&mut self, trace: &[HostPair]) -> Result<(), ServeError> {
        for &pair in trace {
            self.submit(pair)?;
        }
        Ok(())
    }

    /// Serves every pending per-shard batch concurrently, one worker per
    /// shard, merging batch summaries back in shard order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Network`] for the failing shard that comes
    /// first in shard order. Every shard's batch is served and accounted up
    /// to its own failure point; the unserved tail of a failing batch is
    /// discarded, so [`SourceShardedReport::requests`] reports what was
    /// actually accounted.
    pub fn drain(&mut self) -> Result<(), ServeError> {
        if !self.control.begin_drain() {
            return Ok(());
        }
        let shard_count = self.shards.len() as u32;
        crate::drain::drain_shards(
            &mut self.shards,
            self.parallelism,
            &mut self.accounting,
            &satn_tree::NullCostObserver,
            |shard| {
                let mut delta = CostSummary::new();
                let mut outcome = Ok(());
                for index in 0..shard.pending.len() {
                    let pair = shard.pending[index];
                    let tree = &mut shard.trees[(pair.source.index() / shard_count) as usize];
                    match tree.serve(pair.destination) {
                        Ok(cost) => delta.record(cost),
                        Err(error) => {
                            outcome = Err(error);
                            break;
                        }
                    }
                }
                shard.pending.clear();
                (delta, outcome)
            },
        )
        .map_err(|(shard, error)| ServeError::Network { shard, error })
    }

    /// The per-shard cost accounting of everything served so far.
    pub fn accounting(&self) -> &ShardedCostSummary {
        &self.accounting
    }

    /// The replay fingerprint of one shard: the occupancy snapshots of its
    /// owned sources' ego-trees, concatenated in source order.
    ///
    /// # Panics
    ///
    /// Panics if the shard is out of range.
    pub fn fingerprint(&self, shard: u32) -> String {
        let mut fingerprint = String::new();
        for tree in &self.shards[shard as usize].trees {
            fingerprint.push_str(&format!("source {}\n", tree.source()));
            fingerprint.push_str(&snapshot::occupancy_to_string(tree.occupancy()));
        }
        fingerprint
    }

    /// Drains any remaining batches and emits the final per-shard report.
    ///
    /// # Errors
    ///
    /// Propagates the final drain's error.
    pub fn finish(mut self) -> Result<SourceShardedReport, ServeError> {
        self.drain()?;
        let per_shard = (0..self.shards())
            .map(|shard| crate::engine::ShardReport {
                shard,
                elements: self.shards[shard as usize].trees.len() as u32,
                summary: *self.accounting.shard(shard),
                fingerprint: self.fingerprint(shard),
            })
            .collect();
        Ok(SourceShardedReport {
            per_shard,
            merged: self.accounting.merged(),
            drains: self.control.drains(),
            requests: self.accounting.requests(),
        })
    }
}

impl fmt::Debug for SourceShardedEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SourceShardedEngine")
            .field("shards", &self.shards())
            .field("num_hosts", &self.num_hosts)
            .field("parallelism", &self.parallelism)
            .field("submitted", &self.submitted())
            .finish_non_exhaustive()
    }
}

/// The outcome of an ego-tree sharded run (same shape as
/// [`crate::EngineReport`]; `elements` counts the shard's owned sources).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceShardedReport {
    /// Per-shard summaries and fingerprints, in shard order.
    pub per_shard: Vec<crate::engine::ShardReport>,
    /// The shard-order merge of every per-shard summary.
    pub merged: CostSummary,
    /// Number of drains the run used.
    pub drains: u64,
    /// Total requests served and accounted (equals the submitted count on a
    /// clean run; smaller if a drain failed and discarded a batch tail).
    pub requests: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use satn_network::SelfAdjustingNetwork;

    fn trace(num_hosts: u32, length: usize, seed: u64) -> Vec<HostPair> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..length)
            .map(|_| loop {
                let source = rng.gen_range(0..num_hosts);
                let destination = rng.gen_range(0..num_hosts);
                if source != destination {
                    return HostPair::from((source, destination));
                }
            })
            .collect()
    }

    #[test]
    fn sharded_ego_serving_matches_the_serial_network_replay() {
        let num_hosts = 24;
        let seed = 5;
        let trace = trace(num_hosts, 2_000, 99);
        for kind in [AlgorithmKind::RotorPush, AlgorithmKind::MaxPush] {
            let mut engine =
                SourceShardedEngine::new(num_hosts, 4, kind, seed, Parallelism::Threads(3))
                    .unwrap()
                    .with_drain_threshold(173);
            engine.submit_trace(&trace).unwrap();
            let report = engine.finish().unwrap();
            assert_eq!(report.requests, 2_000);

            let mut reference = SelfAdjustingNetwork::new(num_hosts, kind, seed).unwrap();
            reference.serve_trace(&trace).unwrap();
            // Per-shard costs are the merge of the shard's sources' costs.
            for shard in 0..4u32 {
                let mut expected = CostSummary::new();
                for source in (shard..num_hosts).step_by(4) {
                    expected.merge(reference.cost_of_source(Host::new(source)));
                }
                assert_eq!(
                    report.per_shard[shard as usize].summary, expected,
                    "{kind} shard {shard}"
                );
                // Fingerprints: every owned source's ego-tree occupancy.
                let mut expected_fingerprint = String::new();
                for source in (shard..num_hosts).step_by(4) {
                    expected_fingerprint.push_str(&format!("source {}\n", Host::new(source)));
                    expected_fingerprint.push_str(&snapshot::occupancy_to_string(
                        reference.ego_tree(Host::new(source)).occupancy(),
                    ));
                }
                assert_eq!(
                    report.per_shard[shard as usize].fingerprint, expected_fingerprint,
                    "{kind} shard {shard} fingerprint"
                );
            }
            assert_eq!(report.merged, *reference.total_cost());
        }
    }

    #[test]
    fn thread_count_and_cadence_never_change_ego_results() {
        let trace = trace(16, 1_200, 3);
        let mut reports = Vec::new();
        for (threshold, parallelism) in [
            (1usize, Parallelism::Serial),
            (97, Parallelism::Threads(2)),
            (1_000_000, Parallelism::Threads(5)),
        ] {
            let mut engine =
                SourceShardedEngine::new(16, 3, AlgorithmKind::RotorPush, 11, parallelism)
                    .unwrap()
                    .with_drain_threshold(threshold);
            engine.submit_trace(&trace).unwrap();
            reports.push(engine.finish().unwrap());
        }
        // Drain counts differ by construction; everything observable about
        // the served requests must not.
        assert_eq!(reports[0].per_shard, reports[1].per_shard);
        assert_eq!(reports[0].merged, reports[1].merged);
        assert_eq!(reports[1].per_shard, reports[2].per_shard);
        assert_eq!(reports[1].merged, reports[2].merged);
    }

    #[test]
    fn invalid_requests_are_rejected_without_side_effects() {
        let mut engine =
            SourceShardedEngine::new(8, 2, AlgorithmKind::RotorPush, 0, Parallelism::Serial)
                .unwrap();
        assert!(matches!(
            engine.submit(HostPair::from((9u32, 1u32))).unwrap_err(),
            ServeError::Network {
                error: NetworkError::UnknownHost { .. },
                ..
            }
        ));
        assert!(matches!(
            engine.submit(HostPair::from((3u32, 3u32))).unwrap_err(),
            ServeError::Network {
                error: NetworkError::SelfLoop { .. },
                ..
            }
        ));
        let report = engine.finish().unwrap();
        assert_eq!(report.requests, 0);
    }

    #[test]
    fn offline_algorithms_are_rejected_at_construction() {
        let err = SourceShardedEngine::new(8, 2, AlgorithmKind::StaticOpt, 0, Parallelism::Serial)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, ServeError::Network { .. }));
    }
}
