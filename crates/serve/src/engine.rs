//! The sharded multi-tree serving engine.

use crate::drain::DrainControl;
use crate::error::ServeError;
use crate::ingest::{IngestMessage, IngestQueue};
use crate::snapshot::{EngineSnapshot, SnapshotHub, SnapshotReader};
use satn_core::{AlgorithmKind, SelfAdjustingTree};
use satn_exec::Parallelism;
use satn_obs::{EngineMetrics, TraceKind, TraceRing, TraceStamp};
use satn_sim::{ReshardSchedule, ShardedScenario};
use satn_tree::{
    snapshot, CompleteTree, CostObserver, CostSummary, ElementId, LayoutKind, MigrationCost,
    Occupancy, ShardedCostSummary, TreeSnapshot,
};
use satn_workloads::shard::{
    algorithm_seed, carry_remap, handover, handover_touched, shard_epoch_seed, touched_shards,
    EpochedPartition, HandoverMode, Partition, PolicyDriver, ReshardEvent, ReshardPlan,
};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Pending requests buffered across all shards before an automatic drain.
pub const DEFAULT_DRAIN_THRESHOLD: usize = 4_096;

/// One shard: its tree plus the batch of localized requests accumulated for
/// the next drain.
struct Shard {
    tree: Box<dyn SelfAdjustingTree + Send>,
    pending: Vec<ElementId>,
}

/// Mirrors the deterministic cost ledger into the engine's atomic metric
/// registry: batch summaries land in the served/cost counters as they merge
/// (in shard order, on the merge thread), epoch bumps land in the epoch
/// gauge and migration counter. Pure mirror — it never feeds back into the
/// ledger, so the oracle sees metrics equal to replay totals at every drain
/// boundary.
struct MetricsCostObserver<'a>(&'a EngineMetrics);

impl CostObserver for MetricsCostObserver<'_> {
    fn on_batch(&self, _shard: u32, batch: &CostSummary) {
        self.0.requests_served.add(batch.requests());
        self.0.access_cost.add(batch.total().access);
        self.0.adjustment_cost.add(batch.total().adjustment);
    }

    fn on_epoch(&self, epoch: u32, migration: MigrationCost) {
        self.0.reshard_epoch.set(epoch as u64);
        self.0.migration_units.add(migration.total());
    }
}

/// How the engine reshards on its own, mirroring
/// [`satn_sim::ReshardSchedule`] online.
enum OnlineSchedule {
    /// Only explicit [`ShardedEngine::reshard`] calls (or `Reshard` ingest
    /// frames) change the partition.
    External,
    /// Fire each event's plan at its stream position.
    Manual(VecDeque<ReshardEvent>),
    /// Let the policy observe the routed stream and fire at its cadence.
    Policy(PolicyDriver),
}

/// The sharded serving engine: `S` independent per-shard trees partitioning
/// the element universe, fed through an epoch-versioned [`Partition`]
/// router, drained concurrently on the `satn-exec` pool.
///
/// Requests enter via [`ShardedEngine::submit`] (or a whole
/// [`IngestQueue`] via [`ShardedEngine::serve_queue`]), are routed to their
/// owning shard under the **current epoch's** partition and buffered; once
/// the buffered total reaches the drain threshold, every shard's batch is
/// served through the allocation-free
/// [`SelfAdjustingTree::serve_batch`] fast path — one worker per shard batch,
/// results merged back **in shard order** via
/// [`satn_exec::for_each_ordered`], so per-shard cost totals, the merged
/// summary, and the per-shard occupancy fingerprints are bit-identical at
/// every thread count and every drain cadence.
///
/// ## Resharding
///
/// [`ShardedEngine::reshard`] performs the deterministic handover protocol:
///
/// 1. **drain fence** — every buffered batch is served under the closing
///    epoch, and the closing epoch's per-shard fingerprints are recorded;
/// 2. **migrate** — the moved elements are deleted from their source trees
///    and re-inserted into their destinations in canonical element order
///    ([`satn_workloads::shard::handover`]), each paying its access cost,
///    with every shard's tree rebuilt fresh from the post-handover placement
///    and a per-`(shard, epoch)` derived seed;
/// 3. **epoch bump** — the [`EpochedPartition`] log grows, and the
///    accounting opens a new epoch sub-summary carrying the migration cost.
///
/// The protocol is a pure function of (scenario, stream position), so the
/// epoch-segmented serial reference replay
/// ([`ShardedScenario::epoch_replay`]) reproduces the engine's per-epoch
/// cost summaries, migration costs, and boundary fingerprints byte for byte
/// at every thread count — determinism stays *derived*, not hand-kept.
///
/// ## The read phase
///
/// Lookups never enter the write path above. Call
/// [`ShardedEngine::snapshots`] to open the engine's **read side**: from
/// then on every batch-drain boundary (automatic, flush-forced, reshard
/// fence, or final) atomically publishes an immutable [`EngineSnapshot`] —
/// the epoch's partition plus one frozen [`TreeSnapshot`] per shard —
/// which any number of [`SnapshotReader`] handles serve lock-free, on any
/// thread, while the engine keeps draining. Reads never mutate, so the
/// determinism oracle is untouched; each snapshot is stamped with the
/// requests accounted when it was frozen, tying every answered lookup to
/// one point on the deterministic write timeline.
pub struct ShardedEngine {
    log: EpochedPartition,
    shards: Vec<Shard>,
    accounting: ShardedCostSummary,
    parallelism: Parallelism,
    control: DrainControl,
    rebuild: Option<(AlgorithmKind, u64)>,
    /// The physical tree-storage layout applied to post-handover rebuilds
    /// (scenario-built engines inherit the scenario's; see
    /// [`satn_tree::LayoutKind`]). Pure performance knob: every fingerprint
    /// and cost is layout-invariant.
    layout: LayoutKind,
    /// How scheduled and explicit reshards hand state across the epoch
    /// boundary: `Cold` rebuilds every shard tree from scratch, `Warm`
    /// carries rotor/recency/RNG state and skips untouched shards entirely
    /// (their live trees survive verbatim). `Reshard` ingest frames carry
    /// their own mode and override this default.
    handover: HandoverMode,
    schedule: OnlineSchedule,
    /// Per completed epoch, the per-shard fingerprints at its closing drain
    /// fence (the final epoch's fingerprints are appended by `finish`).
    epoch_fingerprints: Vec<Vec<String>>,
    /// Requests submitted before each epoch boundary, matching
    /// [`satn_sim::ShardedReplay::boundaries`].
    boundaries: Vec<usize>,
    /// The read side, opened by [`ShardedEngine::snapshots`]: `None` until
    /// a reader exists, so write-only runs pay nothing for the feature.
    hub: Option<Arc<SnapshotHub>>,
    /// The current epoch's partition, shared with published snapshots
    /// (re-cloned only when the epoch changes).
    partition_cache: Option<(u32, Arc<Partition>)>,
    /// The engine's atomic metric registry — always present (updating an
    /// atomic costs a few nanoseconds; gating it would cost a branch in the
    /// same places), shared with the ingest channel and the network layer.
    metrics: Arc<EngineMetrics>,
    /// The bounded drain/reshard/snapshot event tracer.
    tracer: Arc<TraceRing>,
}

impl ShardedEngine {
    /// The non-panicking constructor behind
    /// [`ShardedEngineConfig::from_parts`](crate::ShardedEngineConfig::from_parts):
    /// a **static** engine from a partition and one pre-built tree per shard
    /// (shard `s`'s tree serves local ids `0..` of `partition.owned(s)`).
    /// Built this way the engine cannot reshard — arbitrary pre-built trees
    /// carry no rebuild recipe.
    pub(crate) fn assemble(
        partition: Partition,
        trees: Vec<Box<dyn SelfAdjustingTree + Send>>,
        parallelism: Parallelism,
    ) -> Result<Self, ServeError> {
        if trees.len() as u32 != partition.shards() {
            return Err(ServeError::InvalidConfig(format!(
                "one tree per shard is required ({} trees for {} shards)",
                trees.len(),
                partition.shards()
            )));
        }
        let shards: Vec<Shard> = trees
            .into_iter()
            .map(|tree| Shard {
                tree,
                pending: Vec::new(),
            })
            .collect();
        let accounting = ShardedCostSummary::new(partition.shards());
        let metrics = Arc::new(EngineMetrics::new(partition.shards()));
        Ok(ShardedEngine {
            log: EpochedPartition::from_partition(partition),
            shards,
            accounting,
            parallelism,
            control: DrainControl::new(DEFAULT_DRAIN_THRESHOLD),
            rebuild: None,
            layout: LayoutKind::default(),
            handover: HandoverMode::Cold,
            schedule: OnlineSchedule::External,
            epoch_fingerprints: Vec::new(),
            boundaries: Vec::new(),
            hub: None,
            partition_cache: None,
            metrics,
            tracer: Arc::new(TraceRing::with_default_capacity()),
        })
    }

    /// The construction behind
    /// [`ShardedEngineConfig::from_scenario`](crate::ShardedEngineConfig::from_scenario):
    /// the scenario's epoch-0 partition, with every shard tree instantiated
    /// exactly as the scenario's standalone per-shard reference scenarios
    /// build theirs (same levels, same derived seeds, same initial placement
    /// — that is what makes the serial replay a byte-exact oracle). The
    /// scenario's [`ReshardSchedule`] is applied online: manual events fire
    /// at their stream positions, a policy observes the routed stream at its
    /// cadence — both reproducing the schedule
    /// [`ShardedScenario::epoch_log`] derives offline.
    pub(crate) fn build_from_scenario(
        scenario: &ShardedScenario,
        parallelism: Parallelism,
    ) -> Result<Self, ServeError> {
        let offline = scenario.algorithm == AlgorithmKind::StaticOpt;
        let schedule = match &scenario.reshard {
            ReshardSchedule::Static => OnlineSchedule::External,
            _ if offline => {
                return Err(ServeError::ReshardUnsupported {
                    reason: "offline algorithms cannot be rebuilt mid-stream",
                })
            }
            ReshardSchedule::Manual(events) => {
                OnlineSchedule::Manual(events.iter().cloned().collect())
            }
            ReshardSchedule::Policy(policy) => {
                OnlineSchedule::Policy(PolicyDriver::new(policy.clone(), scenario.universe()))
            }
        };
        let partition = scenario.partition();
        let mut trees = Vec::with_capacity(partition.shards() as usize);
        for (shard, shard_scenario) in scenario.shard_scenarios().iter().enumerate() {
            // `instantiate` hands offline algorithms their per-shard
            // sequence itself (the scenario's Fixed workload carries it).
            let tree = shard_scenario
                .instantiate()
                .map_err(|error| ServeError::Tree {
                    shard: shard as u32,
                    error,
                })?;
            trees.push(tree);
        }
        let mut engine = ShardedEngine::assemble(partition, trees, parallelism)?;
        engine.rebuild = (!offline).then_some((scenario.algorithm, scenario.seed));
        engine.layout = scenario.layout;
        engine.handover = scenario.handover;
        engine.schedule = schedule;
        Ok(engine)
    }

    /// The validated setter behind
    /// [`ShardedEngineConfig::resharding`](crate::ShardedEngineConfig::resharding):
    /// the rebuild recipe a raw-tree engine needs to reshard — the algorithm
    /// every post-handover tree is re-instantiated with, and the base seed
    /// of the per-`(shard, epoch)` derived seeds.
    pub(crate) fn set_resharding(
        &mut self,
        algorithm: AlgorithmKind,
        seed: u64,
    ) -> Result<(), ServeError> {
        if algorithm == AlgorithmKind::StaticOpt {
            return Err(ServeError::InvalidConfig(
                "offline algorithms cannot be rebuilt mid-stream".to_owned(),
            ));
        }
        self.rebuild = Some((algorithm, seed));
        Ok(())
    }

    /// The setter behind
    /// [`ShardedEngineConfig::layout`](crate::ShardedEngineConfig::layout)
    /// for parts-built engines: the storage layout every post-handover tree
    /// is rebuilt under (the pre-built trees keep their own).
    pub(crate) fn set_rebuild_layout(&mut self, layout: LayoutKind) {
        self.layout = layout;
    }

    /// The setter behind
    /// [`ShardedEngineConfig::handover`](crate::ShardedEngineConfig::handover):
    /// the default [`HandoverMode`] for scheduled and explicit reshards
    /// (`Reshard` ingest frames carry their own mode).
    pub(crate) fn set_handover(&mut self, mode: HandoverMode) {
        self.handover = mode;
    }

    /// The engine's default [`HandoverMode`].
    pub fn handover(&self) -> HandoverMode {
        self.handover
    }

    /// The validated setter behind
    /// [`ShardedEngineConfig::drain_threshold`](crate::ShardedEngineConfig::drain_threshold).
    /// The cadence never changes any result — only how much is buffered
    /// between drains.
    pub(crate) fn set_drain_threshold(&mut self, threshold: usize) -> Result<(), ServeError> {
        if threshold == 0 {
            return Err(ServeError::InvalidConfig(
                "the drain threshold must be positive".to_owned(),
            ));
        }
        self.control.set_threshold(threshold);
        Ok(())
    }

    /// The engine's current element-to-shard assignment.
    pub fn partition(&self) -> &Partition {
        self.log.current()
    }

    /// The full epoch log (epoch 0 = the initial assignment).
    pub fn epoch_log(&self) -> &EpochedPartition {
        &self.log
    }

    /// The current epoch index.
    pub fn epoch(&self) -> u32 {
        self.log.current_epoch()
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The worker budget used for drains.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Requests submitted so far (served or still buffered).
    pub fn submitted(&self) -> u64 {
        self.control.submitted()
    }

    /// Drains triggered so far.
    pub fn drains(&self) -> u64 {
        self.control.drains()
    }

    /// The epoch-versioned per-shard cost accounting of everything served so
    /// far (buffered requests are not yet included — call
    /// [`ShardedEngine::drain`] first).
    pub fn accounting(&self) -> &ShardedCostSummary {
        &self.accounting
    }

    /// The engine's atomic metric registry. Clone the `Arc` to poll from
    /// other threads (the ingest channel and the network front door do);
    /// counters mirroring the cost ledger equal serial-replay totals at
    /// every drain boundary, timing data is advisory.
    pub fn metrics(&self) -> &Arc<EngineMetrics> {
        &self.metrics
    }

    /// The engine's bounded event tracer: drain, snapshot-publish, and
    /// three-phase reshard-handover events, deterministically stamped.
    pub fn tracer(&self) -> &Arc<TraceRing> {
        &self.tracer
    }

    /// Opens the engine's read side and hands out a lock-free
    /// [`SnapshotReader`]. The first call freezes and publishes the current
    /// state; from then on every drain boundary publishes a fresh
    /// [`EngineSnapshot`] that all readers (this one and its clones, on any
    /// thread) observe via one atomic version check. Call before moving the
    /// engine to its serving thread; clone the reader per consumer.
    pub fn snapshots(&mut self) -> SnapshotReader {
        if self.hub.is_none() {
            let initial = self.freeze();
            self.hub = Some(Arc::new(SnapshotHub::new(
                initial,
                Arc::clone(&self.metrics),
            )));
            self.metrics.snapshot_publishes.inc();
            self.metrics.snapshot_version.set(1);
        }
        SnapshotReader::new(Arc::clone(self.hub.as_ref().expect("hub just installed")))
    }

    /// Freezes the engine's current served state (the most recent drain
    /// boundary: trees only change inside drains, so capturing between them
    /// is always consistent with the accounting).
    fn freeze(&mut self) -> EngineSnapshot {
        let epoch = self.log.current_epoch();
        let partition = match &self.partition_cache {
            Some((cached, arc)) if *cached == epoch => Arc::clone(arc),
            _ => {
                let arc = Arc::new(self.log.current().clone());
                self.partition_cache = Some((epoch, Arc::clone(&arc)));
                arc
            }
        };
        let shards = self
            .shards
            .iter()
            .map(|shard| TreeSnapshot::capture(shard.tree.occupancy()))
            .collect();
        EngineSnapshot::assemble(epoch, self.accounting.requests(), partition, shards)
    }

    /// Publishes the current state to the read side, if one is open. Called
    /// at every boundary where the served state advanced: after a drain,
    /// after a reshard's epoch bump, and at `finish`.
    fn publish_snapshot(&mut self) {
        if self.hub.is_none() {
            return;
        }
        let snapshot = self.freeze();
        let served = snapshot.served();
        let version = self.hub.as_ref().expect("checked above").publish(snapshot);
        self.metrics.snapshot_publishes.inc();
        self.metrics.snapshot_version.set(version);
        self.tracer.record(TraceStamp {
            kind: TraceKind::SnapshotPublish,
            epoch: self.log.current_epoch(),
            served,
            detail: version,
        });
    }

    /// Routes one request to its owning shard's batch under the current
    /// epoch's partition, firing any due scheduled reshard first and
    /// draining every shard once the buffered total reaches the threshold.
    ///
    /// # Errors
    ///
    /// [`ServeError::OutOfUniverse`] for foreign elements (nothing is
    /// enqueued), or a drain or reshard error.
    pub fn submit(&mut self, element: ElementId) -> Result<(), ServeError> {
        self.fire_due_manual_events(false)?;
        let (shard, local) =
            self.log
                .current()
                .localize(element)
                .ok_or_else(|| ServeError::OutOfUniverse {
                    element,
                    universe: self.log.current().universe(),
                })?;
        self.shards[shard as usize].pending.push(local);
        self.metrics.shard_buffered[shard as usize].inc();
        let should_drain = self.control.note_submitted();
        if let OnlineSchedule::Policy(driver) = &mut self.schedule {
            let plan = driver.observe(element, self.log.current());
            if let Some(plan) = plan {
                // The reshard's drain fence also covers the threshold.
                return self.reshard(plan);
            }
        }
        if should_drain {
            self.drain()?;
        }
        Ok(())
    }

    /// Submits a burst of requests in order.
    ///
    /// # Errors
    ///
    /// Same contract as [`ShardedEngine::submit`], failing at the first
    /// offending request.
    pub fn submit_burst(&mut self, burst: &[ElementId]) -> Result<(), ServeError> {
        for &element in burst {
            self.submit(element)?;
        }
        Ok(())
    }

    /// Serves every pending per-shard batch concurrently on the pool: one
    /// worker per non-empty shard batch, each through
    /// [`SelfAdjustingTree::serve_batch`]; batch summaries are merged back
    /// in shard order as their prefix completes.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Tree`] for the failing shard that comes first
    /// in shard order. Every shard's batch is still served (and accounted)
    /// up to its own failure point; the unserved tail of a failing batch is
    /// discarded, so [`EngineReport::requests`] reports what was actually
    /// accounted, not what was submitted.
    pub fn drain(&mut self) -> Result<(), ServeError> {
        if !self.control.begin_drain() {
            return Ok(());
        }
        let before = self.accounting.requests();
        let started = Instant::now();
        let observer = MetricsCostObserver(&self.metrics);
        let outcome = crate::drain::drain_shards(
            &mut self.shards,
            self.parallelism,
            &mut self.accounting,
            &observer,
            |shard| {
                let mut delta = CostSummary::new();
                let outcome = if shard.pending.is_empty() {
                    Ok(())
                } else {
                    shard.tree.serve_batch(&shard.pending, &mut delta)
                };
                shard.pending.clear();
                (delta, outcome)
            },
        );
        // Every pending buffer was consumed (cleared even on failure), and a
        // failed drain is still a counted drain — so the registry records the
        // drain before the error propagates, keeping it equal to the ledger.
        for gauge in self.metrics.shard_buffered.iter() {
            gauge.set(0);
        }
        self.metrics.batches_drained.inc();
        self.metrics.drain_latency.record(started.elapsed());
        let served = self.accounting.requests();
        self.tracer.record(TraceStamp {
            kind: TraceKind::Drain,
            epoch: self.log.current_epoch(),
            served,
            detail: served - before,
        });
        outcome.map_err(|(shard, error)| ServeError::Tree { shard, error })?;
        // The drain boundary is the read side's publication point.
        self.publish_snapshot();
        Ok(())
    }

    /// Reshards the engine with the deterministic handover protocol under
    /// the engine's default [`HandoverMode`]: drain fence (every buffered
    /// request is served under the closing epoch, and the closing epoch's
    /// fingerprints are recorded), element migration via the canonical
    /// delete/re-insert order of [`satn_workloads::shard::handover`], and
    /// the epoch bump (partition log + accounting).
    ///
    /// # Errors
    ///
    /// See [`ShardedEngine::reshard_with`].
    pub fn reshard(&mut self, plan: ReshardPlan) -> Result<(), ServeError> {
        let mode = self.handover;
        self.reshard_with(plan, mode)
    }

    /// [`ShardedEngine::reshard`] with an explicit [`HandoverMode`] (the
    /// mode a `Reshard` ingest frame carried, overriding the engine's
    /// default).
    ///
    /// Under [`HandoverMode::Cold`] every shard tree is rebuilt fresh from
    /// the post-handover placement with its `(shard, epoch)` derived seed.
    /// Under [`HandoverMode::Warm`] only the shards the plan touches (move
    /// sources and destinations, [`satn_workloads::shard::touched_shards`])
    /// are rebuilt — each re-instantiated warm, carrying its predecessor's
    /// rotor/recency/RNG state across the boundary
    /// ([`satn_core::WarmState`]) — while every untouched shard keeps its
    /// live tree verbatim, paying zero handover work. Both modes produce
    /// the same placements and the same migration cost; the rotor-walk
    /// determinism results of Angel & Holroyd make the warm trees exactly
    /// as deterministic as cold ones, so the warm serial reference replay
    /// ([`ShardedScenario::epoch_replay`] with a warm scenario) stays a
    /// byte-exact oracle.
    ///
    /// # Errors
    ///
    /// [`ServeError::ReshardUnsupported`] if the engine has no rebuild
    /// recipe, [`ServeError::Reshard`] if the plan does not fit the
    /// partition (the engine is unchanged beyond the drain fence),
    /// [`ServeError::Handover`] if the handover produced a placement no
    /// shard tree can be rebuilt from, or a drain/rebuild error.
    pub fn reshard_with(
        &mut self,
        plan: ReshardPlan,
        mode: HandoverMode,
    ) -> Result<(), ServeError> {
        let Some((kind, base_seed)) = self.rebuild else {
            return Err(ServeError::ReshardUnsupported {
                reason: "the engine was built from raw trees without a rebuild recipe",
            });
        };
        let planned_moves = plan.moves().len() as u64;
        // 1. Drain fence: the closing epoch serves everything it buffered.
        self.drain()?;
        // The handover clock starts after the fence: it measures the
        // migration and rebuild work itself, not the backlog drained first.
        let started = Instant::now();
        let closing_epoch = self.log.current_epoch();
        let old = self.log.current().clone();
        let epoch = {
            let epoch = self.log.apply(plan).map_err(ServeError::Reshard)?;
            epoch.epoch()
        };
        let served = self.accounting.requests();
        self.tracer.record(TraceStamp {
            kind: TraceKind::ReshardFence,
            epoch: closing_epoch,
            served,
            detail: planned_moves,
        });
        // The fence state is the closing epoch's boundary fingerprint.
        self.capture_boundary_fingerprints();
        self.boundaries.push(self.control.submitted() as usize);
        // 2. Migrate: canonical delete/re-insert. Cold mode materializes
        // (and rebuilds from) every shard's placement; warm mode only the
        // touched shards' — an untouched shard's placement already equals
        // its live occupancy bit for bit, so the empty entry means "keep
        // the live tree".
        let touched = touched_shards(&old, self.log.current());
        let outcome = {
            let occupancies: Vec<&Occupancy> = self
                .shards
                .iter()
                .map(|shard| shard.tree.occupancy())
                .collect();
            match mode {
                HandoverMode::Cold => handover(&old, self.log.current(), &occupancies),
                HandoverMode::Warm => {
                    handover_touched(&old, self.log.current(), &occupancies, &touched)
                }
            }
        };
        let mut rebuilt_nodes = 0u64;
        for (shard, placement) in outcome.placements.into_iter().enumerate() {
            if mode == HandoverMode::Warm && !touched[shard] {
                continue;
            }
            let levels = (placement.len() + 1).trailing_zeros();
            let geometry =
                CompleteTree::with_levels(levels).map_err(|error| ServeError::Handover {
                    shard: shard as u32,
                    reason: format!("{} slots: {error}", placement.len()),
                })?;
            let occupancy = Occupancy::from_placement_with_layout(geometry, placement, self.layout)
                .map_err(|error| ServeError::Handover {
                    shard: shard as u32,
                    reason: error.to_string(),
                })?;
            let seed = algorithm_seed(shard_epoch_seed(base_seed, shard as u32, epoch));
            let tree = match mode {
                HandoverMode::Cold => kind.instantiate(occupancy, seed, &[]),
                HandoverMode::Warm => {
                    let remap = carry_remap(&old, self.log.current(), shard as u32);
                    let state = self.shards[shard]
                        .tree
                        .export_state()
                        .carried_into(geometry, &remap);
                    kind.instantiate_warm(occupancy, seed, &[], &state)
                }
            }
            .map_err(|error| ServeError::Tree {
                shard: shard as u32,
                error,
            })?;
            rebuilt_nodes += (1u64 << levels) - 1;
            self.shards[shard].tree = tree;
        }
        let touched_count = touched.iter().filter(|&&t| t).count() as u64;
        self.tracer.record(TraceStamp {
            kind: TraceKind::ReshardMigrate,
            epoch,
            served,
            detail: touched_count,
        });
        // 3. Epoch bump in the ledger, carrying the migration cost — and a
        // publication, so readers see the new epoch's placement immediately
        // rather than at the next drain.
        self.accounting.begin_epoch(outcome.migration);
        MetricsCostObserver(&self.metrics).on_epoch(epoch, outcome.migration);
        self.metrics
            .migration_touched_units
            .add(outcome.migration.total());
        self.metrics.migration_rebuilt_nodes.add(rebuilt_nodes);
        self.metrics.handover_latency.record(started.elapsed());
        self.tracer.record(TraceStamp {
            kind: TraceKind::ReshardEpochBump,
            epoch,
            served,
            detail: outcome.migration.moved,
        });
        self.publish_snapshot();
        Ok(())
    }

    /// Fires every manual event that is due at the current stream position
    /// (all remaining ones when `all` is set, at the end of a run).
    fn fire_due_manual_events(&mut self, all: bool) -> Result<(), ServeError> {
        loop {
            let OnlineSchedule::Manual(events) = &mut self.schedule else {
                return Ok(());
            };
            let due = events
                .front()
                .is_some_and(|event| all || event.at as u64 <= self.control.submitted());
            if !due {
                return Ok(());
            }
            let plan = events.pop_front().expect("front checked").plan;
            self.reshard(plan)?;
        }
    }

    /// Consumes an ingestion queue to completion: bursts are submitted in
    /// arrival order (auto-draining at the threshold), flush messages force
    /// a drain, reshard frames run the full handover protocol, and sender
    /// shutdown triggers a final drain.
    ///
    /// # Errors
    ///
    /// Propagates the first submit, drain, or reshard error.
    pub fn serve_queue(&mut self, queue: &IngestQueue) -> Result<(), ServeError> {
        loop {
            match queue.recv() {
                Some(IngestMessage::Request(element)) => self.submit(element)?,
                Some(IngestMessage::Burst(burst)) => self.submit_burst(&burst)?,
                Some(IngestMessage::Flush) => self.drain()?,
                Some(IngestMessage::Reshard(plan, mode)) => self.reshard_with(plan, mode)?,
                None => return self.drain(),
            }
        }
    }

    /// The replay fingerprint of one shard: its tree's occupancy snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the shard is out of range.
    pub fn fingerprint(&self, shard: u32) -> String {
        snapshot::occupancy_to_string(self.shards[shard as usize].tree.occupancy())
    }

    /// Records every shard's fingerprint as the closing epoch's boundary
    /// state (at a reshard's drain fence, and once more at `finish`).
    fn capture_boundary_fingerprints(&mut self) {
        self.epoch_fingerprints.push(
            (0..self.shards())
                .map(|shard| self.fingerprint(shard))
                .collect(),
        );
    }

    /// Drains any remaining batches, fires any remaining scheduled manual
    /// reshards (their epochs close empty, exactly as in the reference
    /// replay), and emits the final report.
    ///
    /// # Errors
    ///
    /// Propagates the final drain's (or reshard's) error.
    pub fn finish(mut self) -> Result<EngineReport, ServeError> {
        self.drain()?;
        self.fire_due_manual_events(true)?;
        // Readers outlive the engine: leave them the final state.
        self.publish_snapshot();
        self.capture_boundary_fingerprints();
        let per_shard = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| ShardReport {
                shard: index as u32,
                elements: self.log.current().owned(index as u32).len() as u32,
                summary: *self.accounting.shard(index as u32),
                fingerprint: snapshot::occupancy_to_string(shard.tree.occupancy()),
            })
            .collect();
        Ok(EngineReport {
            per_shard,
            merged: self.accounting.merged(),
            migration: self.accounting.migration_total(),
            drains: self.control.drains(),
            requests: self.accounting.requests(),
            epoch_fingerprints: self.epoch_fingerprints,
            boundaries: self.boundaries,
            accounting: self.accounting,
        })
    }
}

impl fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.shards())
            .field("universe", &self.log.current().universe())
            .field("router", &self.log.current().router())
            .field("epoch", &self.epoch())
            .field("parallelism", &self.parallelism)
            .field("submitted", &self.submitted())
            .field("drains", &self.drains())
            .finish_non_exhaustive()
    }
}

/// The final state of one shard after a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// The shard index.
    pub shard: u32,
    /// Elements the shard owns (under the final epoch's partition).
    pub elements: u32,
    /// Everything this shard served, in per-request detail totals (across
    /// all epochs).
    pub summary: CostSummary,
    /// The shard's deterministic replay fingerprint (occupancy snapshot).
    pub fingerprint: String,
}

/// The outcome of a sharded serving run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineReport {
    /// Per-shard summaries and fingerprints, in shard order.
    pub per_shard: Vec<ShardReport>,
    /// The shard-order merge of every per-shard summary (serving cost only).
    pub merged: CostSummary,
    /// The accumulated handover cost of every reshard in the run.
    pub migration: MigrationCost,
    /// Number of drains the run used (cadence never affects results).
    pub drains: u64,
    /// Total requests served and accounted (equals the submitted count on a
    /// clean run; smaller if a drain failed and discarded a batch tail).
    pub requests: u64,
    /// Per epoch, the per-shard fingerprints at the epoch's closing drain
    /// fence (the last entry is the final state). Byte-identical to the
    /// epoch-segmented reference replay's per-epoch final snapshots.
    pub epoch_fingerprints: Vec<Vec<String>>,
    /// Requests submitted before each epoch boundary.
    pub boundaries: Vec<usize>,
    /// The full epoch-versioned ledger: per-epoch sub-summaries and
    /// migration costs.
    pub accounting: ShardedCostSummary,
}

impl EngineReport {
    /// Verifies this report byte for byte against the epoch-segmented
    /// serial reference replay of the same scenario — the determinism
    /// oracle shared by the `serve-smoke` CI binary, the `satnd --verify`
    /// mode, and the transport tests: epoch schedule and boundaries, the
    /// full epoch-versioned cost ledger, and every per-epoch per-shard
    /// boundary fingerprint must all match.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence.
    pub fn verify_against(&self, replay: &satn_sim::ShardedReplay) -> Result<(), String> {
        if self.epoch_fingerprints.len() as u32 != replay.epochs() {
            return Err(format!(
                "epoch count diverged: engine ran {} epochs, replay {}",
                self.epoch_fingerprints.len(),
                replay.epochs()
            ));
        }
        if self.boundaries != replay.boundaries {
            return Err(format!(
                "epoch boundaries diverged: engine {:?}, replay {:?}",
                self.boundaries, replay.boundaries
            ));
        }
        if self.accounting != replay.accounting {
            return Err("the epoch-versioned cost ledger diverged".to_owned());
        }
        for epoch in 0..replay.epochs() {
            let fingerprints = &self.epoch_fingerprints[epoch as usize];
            for shard in 0..fingerprints.len() as u32 {
                if fingerprints[shard as usize] != replay.fingerprint(epoch, shard) {
                    return Err(format!(
                        "epoch {epoch} shard {shard} boundary fingerprint diverged"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShardedEngineConfig;
    use crate::ingest::ingest_channel;
    use satn_sim::{AlgorithmKind, ShardRouter, SimRunner, WorkloadSpec};

    fn scenario(algorithm: AlgorithmKind, router: ShardRouter) -> ShardedScenario {
        let mut s = ShardedScenario::new(
            algorithm,
            WorkloadSpec::Combined { a: 1.5, p: 0.6 },
            4,
            5,
            3_000,
            13,
        );
        s.router = router;
        s
    }

    fn engine(scenario: &ShardedScenario, parallelism: Parallelism) -> ShardedEngine {
        ShardedEngineConfig::from_scenario(scenario)
            .parallelism(parallelism)
            .build()
            .unwrap()
    }

    #[test]
    fn engine_matches_the_serial_reference_replay() {
        let sharded = scenario(AlgorithmKind::RotorPush, ShardRouter::Hash);
        let mut engine = ShardedEngineConfig::from_scenario(&sharded)
            .parallelism(Parallelism::Threads(3))
            .drain_threshold(257)
            .build()
            .unwrap();
        for element in sharded.stream() {
            engine.submit(element).unwrap();
        }
        let report = engine.finish().unwrap();
        assert_eq!(report.requests, 3_000);
        assert!(report.drains >= 3_000 / 257);
        assert_eq!(report.migration, MigrationCost::ZERO);
        assert_eq!(report.epoch_fingerprints.len(), 1);

        let runner = SimRunner::new();
        for (shard, reference) in sharded.shard_scenarios().iter().enumerate() {
            let expected = runner.run(reference).unwrap();
            let got = &report.per_shard[shard];
            assert_eq!(got.summary, expected.summary, "shard {shard} costs");
            assert_eq!(
                got.fingerprint,
                expected.final_snapshot(),
                "shard {shard} fingerprint"
            );
        }
    }

    #[test]
    fn drain_cadence_and_thread_count_never_change_results() {
        let sharded = scenario(AlgorithmKind::MaxPush, ShardRouter::Range);
        let mut reports = Vec::new();
        for (threshold, parallelism) in [
            (1usize, Parallelism::Serial),
            (64, Parallelism::Threads(2)),
            (100_000, Parallelism::Threads(7)),
        ] {
            let mut engine = ShardedEngineConfig::from_scenario(&sharded)
                .parallelism(parallelism)
                .drain_threshold(threshold)
                .build()
                .unwrap();
            let requests: Vec<ElementId> = sharded.stream().collect();
            engine.submit_burst(&requests).unwrap();
            reports.push(engine.finish().unwrap());
        }
        assert_eq!(reports[0].per_shard, reports[1].per_shard);
        assert_eq!(reports[0].merged, reports[1].merged);
        assert_eq!(reports[1].per_shard, reports[2].per_shard);
        assert_eq!(reports[1].merged, reports[2].merged);
        // The full epoch ledger is cadence-invariant too.
        assert_eq!(reports[0].accounting, reports[1].accounting);
        assert_eq!(reports[1].accounting, reports[2].accounting);
    }

    #[test]
    fn queue_fed_runs_match_direct_submission() {
        let sharded = scenario(AlgorithmKind::MoveHalf, ShardRouter::SourceAffinity);

        let mut direct = engine(&sharded, Parallelism::Threads(2));
        for element in sharded.stream() {
            direct.submit(element).unwrap();
        }
        let direct_report = direct.finish().unwrap();

        let mut queued = engine(&sharded, Parallelism::Threads(2));
        let (sender, queue) = ingest_channel(8);
        let requests: Vec<ElementId> = sharded.stream().collect();
        let producer = std::thread::spawn(move || {
            for chunk in requests.chunks(97) {
                sender.send_burst(chunk.to_vec()).unwrap();
            }
            sender.flush().unwrap();
        });
        queued.serve_queue(&queue).unwrap();
        producer.join().unwrap();
        let queued_report = queued.finish().unwrap();

        assert_eq!(direct_report, queued_report);
    }

    #[test]
    fn merged_summary_is_the_shard_order_merge() {
        let sharded = scenario(AlgorithmKind::RotorPush, ShardRouter::Range);
        let mut engine = engine(&sharded, Parallelism::Serial);
        for element in sharded.stream() {
            engine.submit(element).unwrap();
        }
        engine.drain().unwrap();
        let merged = engine.accounting().merged();
        let report = engine.finish().unwrap();
        let mut recombined = CostSummary::new();
        for shard in &report.per_shard {
            recombined.merge(&shard.summary);
        }
        assert_eq!(report.merged, recombined);
        assert_eq!(report.merged, merged);
        assert_eq!(report.merged.requests(), 3_000);
    }

    #[test]
    fn foreign_elements_are_rejected_without_side_effects() {
        let sharded = scenario(AlgorithmKind::RotorPush, ShardRouter::Hash);
        let mut engine = engine(&sharded, Parallelism::Serial);
        let universe = sharded.universe();
        let err = engine.submit(ElementId::new(universe)).unwrap_err();
        assert!(matches!(err, ServeError::OutOfUniverse { .. }));
        assert!(err.to_string().contains("outside"));
        let report = engine.finish().unwrap();
        assert_eq!(report.requests, 0);
        assert_eq!(report.drains, 0);
    }

    #[test]
    fn raw_tree_engines_cannot_reshard_without_a_recipe() {
        let sharded = scenario(AlgorithmKind::RotorPush, ShardRouter::Hash);
        let partition = sharded.partition();
        let trees: Vec<_> = sharded
            .shard_scenarios()
            .iter()
            .map(|s| s.instantiate().unwrap())
            .collect();
        let mut engine = ShardedEngineConfig::from_parts(partition, trees)
            .parallelism(Parallelism::Serial)
            .build()
            .unwrap();
        let err = engine
            .reshard(ReshardPlan::new([(ElementId::new(0), 1)]))
            .unwrap_err();
        assert!(matches!(err, ServeError::ReshardUnsupported { .. }));
        assert!(err.to_string().contains("cannot reshard"));
        assert_eq!(engine.epoch(), 0);
    }

    #[test]
    fn raw_tree_engines_reshard_with_a_recipe() {
        let sharded = scenario(AlgorithmKind::RotorPush, ShardRouter::Hash);
        let partition = sharded.partition();
        let trees: Vec<_> = sharded
            .shard_scenarios()
            .iter()
            .map(|s| s.instantiate().unwrap())
            .collect();
        let mut engine = ShardedEngineConfig::from_parts(partition, trees)
            .parallelism(Parallelism::Serial)
            .resharding(AlgorithmKind::RotorPush, sharded.seed)
            .build()
            .unwrap();
        engine
            .reshard(ReshardPlan::new([(ElementId::new(0), 1)]))
            .unwrap();
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.partition().shard_of(ElementId::new(0)), Some(1));
        assert_eq!(engine.accounting().migration_total().moved, 1);
    }

    #[test]
    fn warm_handover_keeps_untouched_shard_trees_verbatim() {
        let sharded = scenario(AlgorithmKind::RotorPush, ShardRouter::Range);
        let mut engine = engine(&sharded, Parallelism::Serial);
        for element in sharded.stream() {
            engine.submit(element).unwrap();
        }
        engine.drain().unwrap();
        let addresses = |engine: &ShardedEngine| -> Vec<*const u8> {
            engine
                .shards
                .iter()
                .map(|shard| &*shard.tree as *const dyn SelfAdjustingTree as *const u8)
                .collect()
        };
        let before = addresses(&engine);
        // The plan touches shards 0 (source) and 1 (destination) only.
        engine
            .reshard_with(
                ReshardPlan::new([(ElementId::new(0), 1)]),
                HandoverMode::Warm,
            )
            .unwrap();
        let after = addresses(&engine);
        // Untouched shards keep the exact same live tree object — zero
        // per-shard handover work, not merely an equal rebuild.
        assert_eq!(
            before[2], after[2],
            "shard 2 was rebuilt despite being untouched"
        );
        assert_eq!(
            before[3], after[3],
            "shard 3 was rebuilt despite being untouched"
        );
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.partition().shard_of(ElementId::new(0)), Some(1));
        // The engine still serves and finishes cleanly on the carried trees.
        for element in sharded.stream() {
            engine.submit(element).unwrap();
        }
        let report = engine.finish().unwrap();
        assert_eq!(report.requests, 6_000);
    }

    #[test]
    fn warm_engines_match_the_warm_serial_reference_replay() {
        for algorithm in [
            AlgorithmKind::RotorPush,
            AlgorithmKind::MaxPush,
            AlgorithmKind::RandomPush,
        ] {
            let mut sharded = scenario(algorithm, ShardRouter::Hash);
            sharded.handover = HandoverMode::Warm;
            sharded.reshard = satn_sim::ReshardSchedule::Manual(vec![
                ReshardEvent {
                    at: 1_000,
                    plan: ReshardPlan::new([(ElementId::new(0), 1), (ElementId::new(5), 2)]),
                },
                ReshardEvent {
                    at: 2_000,
                    plan: ReshardPlan::new([(ElementId::new(0), 3)]),
                },
            ]);
            let replay = sharded.epoch_replay(&SimRunner::new()).unwrap();
            for parallelism in [Parallelism::Serial, Parallelism::Threads(2)] {
                let mut engine = ShardedEngineConfig::from_scenario(&sharded)
                    .parallelism(parallelism)
                    .drain_threshold(313)
                    .build()
                    .unwrap();
                for element in sharded.stream() {
                    engine.submit(element).unwrap();
                }
                let report = engine.finish().unwrap();
                report.verify_against(&replay).unwrap_or_else(|divergence| {
                    panic!("{algorithm:?} at {parallelism:?}: {divergence}")
                });
            }
        }
    }

    #[test]
    fn migrate_trace_detail_counts_touched_shards() {
        let sharded = scenario(AlgorithmKind::RotorPush, ShardRouter::Range);
        for mode in [HandoverMode::Cold, HandoverMode::Warm] {
            let mut engine = engine(&sharded, Parallelism::Serial);
            engine
                .reshard_with(ReshardPlan::new([(ElementId::new(0), 1)]), mode)
                .unwrap();
            let migrate = engine
                .tracer()
                .stamps()
                .into_iter()
                .find(|stamp| stamp.kind == TraceKind::ReshardMigrate)
                .expect("a reshard records a migrate span");
            assert_eq!(
                migrate.detail, 2,
                "{mode} migrate detail must be the touched-shard count, not migration cost"
            );
        }
    }

    #[test]
    fn invalid_plans_leave_the_engine_usable() {
        let sharded = scenario(AlgorithmKind::MaxPush, ShardRouter::Range);
        let mut engine = engine(&sharded, Parallelism::Serial);
        let err = engine
            .reshard(ReshardPlan::new([(ElementId::new(0), 99)]))
            .unwrap_err();
        assert!(matches!(err, ServeError::Reshard(_)));
        assert_eq!(engine.epoch(), 0);
        // The engine still serves normally afterwards.
        for element in sharded.stream() {
            engine.submit(element).unwrap();
        }
        let report = engine.finish().unwrap();
        assert_eq!(report.requests, 3_000);
    }

    #[test]
    fn offline_algorithms_reject_reshard_schedules() {
        let mut sharded = scenario(AlgorithmKind::StaticOpt, ShardRouter::Range);
        sharded.reshard = satn_sim::ReshardSchedule::Manual(vec![ReshardEvent {
            at: 100,
            plan: ReshardPlan::new([(ElementId::new(0), 1)]),
        }]);
        let err = ShardedEngineConfig::from_scenario(&sharded)
            .parallelism(Parallelism::Serial)
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, ServeError::ReshardUnsupported { .. }));
    }

    #[test]
    fn snapshot_readers_track_drain_boundaries() {
        let sharded = scenario(AlgorithmKind::RotorPush, ShardRouter::Range);
        let mut engine = ShardedEngineConfig::from_scenario(&sharded)
            .parallelism(Parallelism::Serial)
            .drain_threshold(500)
            .build()
            .unwrap();
        let mut reader = engine.snapshots();
        assert_eq!(reader.snapshot().served(), 0);
        assert_eq!(reader.lookup(ElementId::new(0)).unwrap().epoch, 0);

        for element in sharded.stream() {
            engine.submit(element).unwrap();
        }
        engine.drain().unwrap();
        let at_drain = std::sync::Arc::clone(reader.snapshot());
        assert_eq!(at_drain.served(), 3_000);
        for shard in 0..engine.shards() {
            assert_eq!(at_drain.fingerprint(shard), engine.fingerprint(shard));
        }

        let report = engine.finish().unwrap();
        let final_snap = std::sync::Arc::clone(reader.snapshot());
        for (shard, shard_report) in report.per_shard.iter().enumerate() {
            assert_eq!(
                final_snap.fingerprint(shard as u32),
                shard_report.fingerprint,
                "published snapshot diverged from the final report on shard {shard}"
            );
        }
    }

    #[test]
    fn snapshots_follow_reshards_to_the_new_epoch() {
        let sharded = scenario(AlgorithmKind::RotorPush, ShardRouter::Range);
        let mut engine = engine(&sharded, Parallelism::Serial);
        let mut reader = engine.snapshots();
        let moved = ElementId::new(0);
        let before = reader.lookup(moved).unwrap();
        assert_eq!((before.epoch, before.shard), (0, 0));
        engine.reshard(ReshardPlan::new([(moved, 2)])).unwrap();
        let after = reader.lookup(moved).unwrap();
        assert_eq!(
            (after.epoch, after.shard),
            (1, 2),
            "the post-reshard publication must route under the new partition"
        );
    }

    #[test]
    fn debug_output_names_the_configuration() {
        let sharded = scenario(AlgorithmKind::RotorPush, ShardRouter::Hash);
        let engine = engine(&sharded, Parallelism::Serial);
        let rendered = format!("{engine:?}");
        assert!(rendered.contains("ShardedEngine"));
        assert!(rendered.contains("universe"));
        assert!(rendered.contains("epoch"));
    }
}
