//! The sharded multi-tree serving engine.

use crate::error::ServeError;
use crate::ingest::{IngestMessage, IngestQueue};
use satn_core::SelfAdjustingTree;
use satn_exec::Parallelism;
use satn_sim::ShardedScenario;
use satn_tree::{snapshot, CostSummary, ElementId, ShardedCostSummary};
use satn_workloads::shard::Partition;
use std::fmt;

/// Pending requests buffered across all shards before an automatic drain.
pub const DEFAULT_DRAIN_THRESHOLD: usize = 4_096;

/// One shard: its tree plus the batch of localized requests accumulated for
/// the next drain.
struct Shard {
    tree: Box<dyn SelfAdjustingTree + Send>,
    pending: Vec<ElementId>,
}

/// The sharded serving engine: `S` independent per-shard trees partitioning
/// the element universe, fed through a [`Partition`] router, drained
/// concurrently on the `satn-exec` pool.
///
/// Requests enter via [`ShardedEngine::submit`] (or a whole
/// [`IngestQueue`] via [`ShardedEngine::serve_queue`]), are routed to their
/// owning shard and buffered; once the buffered total reaches the drain
/// threshold, every shard's batch is served through the allocation-free
/// [`SelfAdjustingTree::serve_batch`] fast path — one worker per shard batch,
/// results merged back **in shard order** via
/// [`satn_exec::for_each_ordered`], so per-shard cost totals, the merged
/// summary, and the per-shard occupancy fingerprints are bit-identical at
/// every thread count and every drain cadence. The serial reference replay
/// ([`ShardedScenario::shard_scenarios`] driven by
/// [`satn_sim::SimRunner`]) is therefore a byte-exact oracle for any
/// concurrent run.
pub struct ShardedEngine {
    partition: Partition,
    shards: Vec<Shard>,
    accounting: ShardedCostSummary,
    parallelism: Parallelism,
    drain_threshold: usize,
    pending_total: usize,
    drains: u64,
    submitted: u64,
}

impl ShardedEngine {
    /// Assembles an engine from a partition and one pre-built tree per shard
    /// (shard `s`'s tree serves local ids `0..` of `partition.owned(s)`).
    ///
    /// # Panics
    ///
    /// Panics if the tree count differs from the partition's shard count.
    pub fn new(
        partition: Partition,
        trees: Vec<Box<dyn SelfAdjustingTree + Send>>,
        parallelism: Parallelism,
    ) -> Self {
        assert_eq!(
            trees.len() as u32,
            partition.shards(),
            "one tree per shard is required"
        );
        let shards: Vec<Shard> = trees
            .into_iter()
            .map(|tree| Shard {
                tree,
                pending: Vec::new(),
            })
            .collect();
        let accounting = ShardedCostSummary::new(partition.shards());
        ShardedEngine {
            partition,
            shards,
            accounting,
            parallelism,
            drain_threshold: DEFAULT_DRAIN_THRESHOLD,
            pending_total: 0,
            drains: 0,
            submitted: 0,
        }
    }

    /// Builds the engine a [`ShardedScenario`] describes: the scenario's
    /// partition, with every shard tree instantiated exactly as the
    /// scenario's standalone per-shard reference scenarios build theirs
    /// (same levels, same derived seeds, same initial placement — that is
    /// what makes the serial replay a byte-exact oracle).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Tree`] if a shard's algorithm cannot be
    /// instantiated (e.g. an offline layout over an invalid sequence).
    pub fn from_scenario(
        scenario: &ShardedScenario,
        parallelism: Parallelism,
    ) -> Result<Self, ServeError> {
        let partition = scenario.partition();
        let mut trees = Vec::with_capacity(partition.shards() as usize);
        for (shard, shard_scenario) in scenario.shard_scenarios().iter().enumerate() {
            // `instantiate` hands offline algorithms their per-shard
            // sequence itself (the scenario's Fixed workload carries it).
            let tree = shard_scenario
                .instantiate()
                .map_err(|error| ServeError::Tree {
                    shard: shard as u32,
                    error,
                })?;
            trees.push(tree);
        }
        Ok(ShardedEngine::new(partition, trees, parallelism))
    }

    /// Overrides the automatic-drain threshold (builder style). The cadence
    /// never changes any result — only how much is buffered between drains.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    #[must_use]
    pub fn with_drain_threshold(mut self, threshold: usize) -> Self {
        assert!(threshold > 0, "the drain threshold must be positive");
        self.drain_threshold = threshold;
        self
    }

    /// The engine's element-to-shard assignment.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The worker budget used for drains.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Requests submitted so far (served or still buffered).
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Drains triggered so far.
    pub fn drains(&self) -> u64 {
        self.drains
    }

    /// The per-shard cost accounting of everything served so far (buffered
    /// requests are not yet included — call [`ShardedEngine::drain`] first).
    pub fn accounting(&self) -> &ShardedCostSummary {
        &self.accounting
    }

    /// Routes one request to its owning shard's batch, draining every shard
    /// once the buffered total reaches the threshold.
    ///
    /// # Errors
    ///
    /// [`ServeError::OutOfUniverse`] for foreign elements (nothing is
    /// enqueued), or a drain error.
    pub fn submit(&mut self, element: ElementId) -> Result<(), ServeError> {
        let (shard, local) =
            self.partition
                .localize(element)
                .ok_or_else(|| ServeError::OutOfUniverse {
                    element,
                    universe: self.partition.universe(),
                })?;
        self.shards[shard as usize].pending.push(local);
        self.pending_total += 1;
        self.submitted += 1;
        if self.pending_total >= self.drain_threshold {
            self.drain()?;
        }
        Ok(())
    }

    /// Submits a burst of requests in order.
    ///
    /// # Errors
    ///
    /// Same contract as [`ShardedEngine::submit`], failing at the first
    /// offending request.
    pub fn submit_burst(&mut self, burst: &[ElementId]) -> Result<(), ServeError> {
        for &element in burst {
            self.submit(element)?;
        }
        Ok(())
    }

    /// Serves every pending per-shard batch concurrently on the pool: one
    /// worker per non-empty shard batch, each through
    /// [`SelfAdjustingTree::serve_batch`]; batch summaries are merged back
    /// in shard order as their prefix completes.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Tree`] for the failing shard that comes first
    /// in shard order. Every shard's batch is still served (and accounted)
    /// up to its own failure point; the unserved tail of a failing batch is
    /// discarded, so [`EngineReport::requests`] reports what was actually
    /// accounted, not what was submitted.
    pub fn drain(&mut self) -> Result<(), ServeError> {
        if self.pending_total == 0 {
            return Ok(());
        }
        self.drains += 1;
        self.pending_total = 0;
        crate::drain::drain_shards(
            &mut self.shards,
            self.parallelism,
            &mut self.accounting,
            |shard| {
                let mut delta = CostSummary::new();
                let outcome = if shard.pending.is_empty() {
                    Ok(())
                } else {
                    shard.tree.serve_batch(&shard.pending, &mut delta)
                };
                shard.pending.clear();
                (delta, outcome)
            },
        )
        .map_err(|(shard, error)| ServeError::Tree { shard, error })
    }

    /// Consumes an ingestion queue to completion: bursts are submitted in
    /// arrival order (auto-draining at the threshold), flush messages force
    /// a drain, and sender shutdown triggers a final drain.
    ///
    /// # Errors
    ///
    /// Propagates the first submit or drain error.
    pub fn serve_queue(&mut self, queue: &IngestQueue) -> Result<(), ServeError> {
        loop {
            match queue.recv() {
                Some(IngestMessage::Request(element)) => self.submit(element)?,
                Some(IngestMessage::Burst(burst)) => self.submit_burst(&burst)?,
                Some(IngestMessage::Flush) => self.drain()?,
                None => return self.drain(),
            }
        }
    }

    /// The replay fingerprint of one shard: its tree's occupancy snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the shard is out of range.
    pub fn fingerprint(&self, shard: u32) -> String {
        snapshot::occupancy_to_string(self.shards[shard as usize].tree.occupancy())
    }

    /// Drains any remaining batches and emits the final report.
    ///
    /// # Errors
    ///
    /// Propagates the final drain's error.
    pub fn finish(mut self) -> Result<EngineReport, ServeError> {
        self.drain()?;
        let per_shard = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| ShardReport {
                shard: index as u32,
                elements: self.partition.owned(index as u32).len() as u32,
                summary: *self.accounting.shard(index as u32),
                fingerprint: snapshot::occupancy_to_string(shard.tree.occupancy()),
            })
            .collect();
        Ok(EngineReport {
            per_shard,
            merged: self.accounting.merged(),
            drains: self.drains,
            requests: self.accounting.requests(),
        })
    }
}

impl fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.shards())
            .field("universe", &self.partition.universe())
            .field("router", &self.partition.router())
            .field("parallelism", &self.parallelism)
            .field("submitted", &self.submitted)
            .field("drains", &self.drains)
            .finish_non_exhaustive()
    }
}

/// The final state of one shard after a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// The shard index.
    pub shard: u32,
    /// Elements the shard owns.
    pub elements: u32,
    /// Everything this shard served, in per-request detail totals.
    pub summary: CostSummary,
    /// The shard's deterministic replay fingerprint (occupancy snapshot).
    pub fingerprint: String,
}

/// The outcome of a sharded serving run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineReport {
    /// Per-shard summaries and fingerprints, in shard order.
    pub per_shard: Vec<ShardReport>,
    /// The shard-order merge of every per-shard summary.
    pub merged: CostSummary,
    /// Number of drains the run used (cadence never affects results).
    pub drains: u64,
    /// Total requests served and accounted (equals the submitted count on a
    /// clean run; smaller if a drain failed and discarded a batch tail).
    pub requests: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::ingest_channel;
    use satn_sim::{AlgorithmKind, ShardRouter, SimRunner, WorkloadSpec};

    fn scenario(algorithm: AlgorithmKind, router: ShardRouter) -> ShardedScenario {
        let mut s = ShardedScenario::new(
            algorithm,
            WorkloadSpec::Combined { a: 1.5, p: 0.6 },
            4,
            5,
            3_000,
            13,
        );
        s.router = router;
        s
    }

    #[test]
    fn engine_matches_the_serial_reference_replay() {
        let sharded = scenario(AlgorithmKind::RotorPush, ShardRouter::Hash);
        let mut engine = ShardedEngine::from_scenario(&sharded, Parallelism::Threads(3))
            .unwrap()
            .with_drain_threshold(257);
        for element in sharded.stream() {
            engine.submit(element).unwrap();
        }
        let report = engine.finish().unwrap();
        assert_eq!(report.requests, 3_000);
        assert!(report.drains >= 3_000 / 257);

        let runner = SimRunner::new();
        for (shard, reference) in sharded.shard_scenarios().iter().enumerate() {
            let expected = runner.run(reference).unwrap();
            let got = &report.per_shard[shard];
            assert_eq!(got.summary, expected.summary, "shard {shard} costs");
            assert_eq!(
                got.fingerprint,
                expected.final_snapshot(),
                "shard {shard} fingerprint"
            );
        }
    }

    #[test]
    fn drain_cadence_and_thread_count_never_change_results() {
        let sharded = scenario(AlgorithmKind::MaxPush, ShardRouter::Range);
        let mut reports = Vec::new();
        for (threshold, parallelism) in [
            (1usize, Parallelism::Serial),
            (64, Parallelism::Threads(2)),
            (100_000, Parallelism::Threads(7)),
        ] {
            let mut engine = ShardedEngine::from_scenario(&sharded, parallelism)
                .unwrap()
                .with_drain_threshold(threshold);
            let requests: Vec<ElementId> = sharded.stream().collect();
            engine.submit_burst(&requests).unwrap();
            reports.push(engine.finish().unwrap());
        }
        assert_eq!(reports[0].per_shard, reports[1].per_shard);
        assert_eq!(reports[0].merged, reports[1].merged);
        assert_eq!(reports[1].per_shard, reports[2].per_shard);
        assert_eq!(reports[1].merged, reports[2].merged);
    }

    #[test]
    fn queue_fed_runs_match_direct_submission() {
        let sharded = scenario(AlgorithmKind::MoveHalf, ShardRouter::SourceAffinity);

        let mut direct = ShardedEngine::from_scenario(&sharded, Parallelism::Threads(2)).unwrap();
        for element in sharded.stream() {
            direct.submit(element).unwrap();
        }
        let direct_report = direct.finish().unwrap();

        let mut queued = ShardedEngine::from_scenario(&sharded, Parallelism::Threads(2)).unwrap();
        let (sender, queue) = ingest_channel(8);
        let requests: Vec<ElementId> = sharded.stream().collect();
        let producer = std::thread::spawn(move || {
            for chunk in requests.chunks(97) {
                sender.send_burst(chunk.to_vec()).unwrap();
            }
            sender.flush().unwrap();
        });
        queued.serve_queue(&queue).unwrap();
        producer.join().unwrap();
        let queued_report = queued.finish().unwrap();

        assert_eq!(direct_report, queued_report);
    }

    #[test]
    fn merged_summary_is_the_shard_order_merge() {
        let sharded = scenario(AlgorithmKind::RotorPush, ShardRouter::Range);
        let mut engine = ShardedEngine::from_scenario(&sharded, Parallelism::Serial).unwrap();
        for element in sharded.stream() {
            engine.submit(element).unwrap();
        }
        engine.drain().unwrap();
        let merged = engine.accounting().merged();
        let report = engine.finish().unwrap();
        let mut recombined = CostSummary::new();
        for shard in &report.per_shard {
            recombined.merge(&shard.summary);
        }
        assert_eq!(report.merged, recombined);
        assert_eq!(report.merged, merged);
        assert_eq!(report.merged.requests(), 3_000);
    }

    #[test]
    fn foreign_elements_are_rejected_without_side_effects() {
        let sharded = scenario(AlgorithmKind::RotorPush, ShardRouter::Hash);
        let mut engine = ShardedEngine::from_scenario(&sharded, Parallelism::Serial).unwrap();
        let universe = sharded.universe();
        let err = engine.submit(ElementId::new(universe)).unwrap_err();
        assert!(matches!(err, ServeError::OutOfUniverse { .. }));
        assert!(err.to_string().contains("outside"));
        let report = engine.finish().unwrap();
        assert_eq!(report.requests, 0);
        assert_eq!(report.drains, 0);
    }

    #[test]
    fn debug_output_names_the_configuration() {
        let sharded = scenario(AlgorithmKind::RotorPush, ShardRouter::Hash);
        let engine = ShardedEngine::from_scenario(&sharded, Parallelism::Serial).unwrap();
        let rendered = format!("{engine:?}");
        assert!(rendered.contains("ShardedEngine"));
        assert!(rendered.contains("universe"));
    }
}
