//! The length-prefixed binary wire protocol carrying the ingestion protocol
//! across a byte stream.
//!
//! Every frame is a little-endian `u32` body length followed by the body;
//! the body's first byte is a tag, the rest the tag's fixed-layout payload:
//!
//! | tag | frame        | payload                                        |
//! |-----|--------------|------------------------------------------------|
//! | `0` | `Request`    | element id (`u32`)                             |
//! | `1` | `Burst`      | count (`u32`), then count element ids (`u32`)  |
//! | `2` | `Flush`      | empty                                          |
//! | `3` | `Reshard`    | count (`u32`), handover mode (`u8`: 0 cold, 1 warm), then count moves (`u32` element, `u32` destination shard) |
//! | `4` | `Ack`        | acknowledged frame count (`u64`), server → client |
//! | `5` | `Lookup`     | element id (`u32`) — snapshot read, client → server |
//! | `6` | `Found`      | element (`u32`), shard (`u32`), node (`u32`), epoch (`u32`), served (`u64`), server → client |
//! | `7` | `Stats`      | empty — metrics poll, client → server          |
//! | `8` | `StatsReply` | an encoded [`MetricsSnapshot`] (see [`MetricsSnapshot::decode`]), server → client |
//!
//! All integers are little-endian. The codec is **canonical**: for every
//! frame there is exactly one encoding, and decoding validates that the
//! body length matches the tag's implied layout exactly — trailing garbage,
//! short payloads, unknown tags, and oversized frames are all
//! [`WireError`]s, never panics, because the bytes come from the network.
//! Decoded reshard plans go through [`ReshardPlan::try_new`], so a plan
//! moving the same element twice is rejected as
//! [`WireError::DuplicateMove`] rather than unbalancing the engine.
//!
//! The [`MAX_FRAME_BODY`] cap is enforced **symmetrically**: [`read_frame`]
//! rejects oversized length prefixes before allocating, and
//! [`encode_frame`] refuses to produce a frame the peer would drop —
//! a burst longer than [`MAX_BURST_ELEMENTS`] or a plan longer than
//! [`MAX_PLAN_MOVES`] is an encode-side [`WireError::Oversized`], not a
//! silently truncated count. (Clients split long bursts instead:
//! [`TcpIngest::send_burst`](crate::TcpIngest::send_burst) chunks at the
//! cap, so over-cap bursts survive end-to-end.)
//!
//! Determinism: the wire format carries the ingestion protocol verbatim —
//! frame order is arrival order, and the engine behind the queue never
//! knows which transport a message crossed. Encode/decode is a bijection
//! (property-tested in `tests/wire_roundtrip.rs`), so a stream replayed
//! over TCP is bit-identical to the same stream submitted in-process.

use crate::error::ServeError;
use crate::ingest::IngestMessage;
use crate::snapshot::LookupAnswer;
use satn_obs::MetricsSnapshot;
use satn_tree::{ElementId, NodeId};
use satn_workloads::shard::{HandoverMode, ReshardPlan};
use std::fmt;
use std::io::{Read, Write};

/// Largest accepted frame body, in bytes (8 MiB — a burst of two million
/// requests). Anything longer is rejected before allocation, so a corrupt
/// or hostile length prefix cannot balloon server memory.
pub const MAX_FRAME_BODY: u32 = 8 << 20;

/// Most elements a single `Burst` frame can carry without its body
/// exceeding [`MAX_FRAME_BODY`] (tag byte + count + 4 bytes per element).
/// [`encode_frame`] rejects longer bursts; clients split at this boundary.
pub const MAX_BURST_ELEMENTS: usize = (MAX_FRAME_BODY as usize - 5) / 4;

/// Most moves a single `Reshard` frame can carry without its body exceeding
/// [`MAX_FRAME_BODY`] (tag byte + count + handover-mode byte + 8 bytes per
/// move). A plan is an atomic unit — it cannot be split — so a longer plan
/// is an encode error.
pub const MAX_PLAN_MOVES: usize = (MAX_FRAME_BODY as usize - 6) / 8;

const TAG_REQUEST: u8 = 0;
const TAG_BURST: u8 = 1;
const TAG_FLUSH: u8 = 2;
const TAG_RESHARD: u8 = 3;
const TAG_ACK: u8 = 4;
const TAG_LOOKUP: u8 = 5;
const TAG_FOUND: u8 = 6;
const TAG_STATS: u8 = 7;
const TAG_STATS_REPLY: u8 = 8;

/// One frame of the wire protocol: an ingestion message travelling client →
/// server, or an acknowledgement travelling server → client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// An ingestion protocol message (client → server).
    Ingest(IngestMessage),
    /// Cumulative acknowledgement (server → client): `seq` frames of this
    /// connection have been accepted into the engine's ingest queue. Sent
    /// after enqueueing — not after serving — so a client measuring
    /// round-trip time observes engine backpressure, and a client that saw
    /// `seq = n` knows the first `n` frames cannot be lost to a crash of
    /// the connection.
    Ack {
        /// Number of frames acknowledged so far on this connection.
        seq: u64,
    },
    /// A snapshot read (client → server): where does this element currently
    /// sit? Lookups bypass the ingest queue entirely — the server answers
    /// from the engine's published snapshot without touching the write
    /// path, and the frame carries no sequence number because it is not
    /// acknowledged; its [`Frame::Found`] reply *is* the acknowledgement.
    Lookup {
        /// The element being looked up.
        element: ElementId,
    },
    /// The answer to a [`Frame::Lookup`] (server → client): the element's
    /// placement in the snapshot that served the read, stamped with the
    /// snapshot's epoch and write-timeline position.
    Found(LookupAnswer),
    /// A metrics poll (client → server): freeze the engine's registry and
    /// reply. Like [`Frame::Lookup`] it bypasses the ingest queue and is not
    /// acknowledged — its [`Frame::StatsReply`] is the acknowledgement.
    Stats,
    /// The answer to a [`Frame::Stats`] (server → client): the registry
    /// frozen at reply time, in the canonical [`MetricsSnapshot`] encoding.
    StatsReply(MetricsSnapshot),
}

impl Frame {
    /// The frame's wire tag, for per-tag traffic accounting.
    pub fn tag(&self) -> u8 {
        match self {
            Frame::Ingest(IngestMessage::Request(_)) => TAG_REQUEST,
            Frame::Ingest(IngestMessage::Burst(_)) => TAG_BURST,
            Frame::Ingest(IngestMessage::Flush) => TAG_FLUSH,
            Frame::Ingest(IngestMessage::Reshard(..)) => TAG_RESHARD,
            Frame::Ack { .. } => TAG_ACK,
            Frame::Lookup { .. } => TAG_LOOKUP,
            Frame::Found(_) => TAG_FOUND,
            Frame::Stats => TAG_STATS,
            Frame::StatsReply(_) => TAG_STATS_REPLY,
        }
    }
}

/// A malformed or out-of-contract wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The stream ended mid-frame (inside the header or the body).
    Truncated,
    /// A frame body longer than [`MAX_FRAME_BODY`]: on decode, a length
    /// prefix exceeding the cap; on encode, a burst or reshard plan whose
    /// payload cannot fit in one frame (see [`MAX_BURST_ELEMENTS`] /
    /// [`MAX_PLAN_MOVES`]).
    Oversized {
        /// The length the body would have (saturated at `u32::MAX`).
        len: u32,
        /// The maximum this codec accepts.
        max: u32,
    },
    /// The body's first byte is not a known frame tag.
    UnknownTag(u8),
    /// The body length does not match the tag's implied payload layout.
    Malformed {
        /// What was wrong with the payload.
        reason: &'static str,
    },
    /// A decoded reshard plan moves the same element more than once.
    DuplicateMove(ElementId),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("the stream ended mid-frame"),
            WireError::Oversized { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::UnknownTag(tag) => write!(f, "unknown frame tag {tag}"),
            WireError::Malformed { reason } => write!(f, "malformed frame: {reason}"),
            WireError::DuplicateMove(element) => {
                write!(f, "reshard frame moves element {element} more than once")
            }
        }
    }
}

impl std::error::Error for WireError {}

fn push_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn take_u32(bytes: &mut &[u8]) -> Result<u32, WireError> {
    let (head, rest) = bytes.split_at_checked(4).ok_or(WireError::Malformed {
        reason: "payload ends inside an integer",
    })?;
    *bytes = rest;
    Ok(u32::from_le_bytes(head.try_into().expect("4-byte split")))
}

fn take_u64(bytes: &mut &[u8]) -> Result<u64, WireError> {
    let (head, rest) = bytes.split_at_checked(8).ok_or(WireError::Malformed {
        reason: "payload ends inside an integer",
    })?;
    *bytes = rest;
    Ok(u64::from_le_bytes(head.try_into().expect("8-byte split")))
}

/// Checks that a repeated payload of `count` items at `bytes_per_item`
/// bytes (plus `overhead` bytes of tag, count prefix, and any fixed fields)
/// fits [`MAX_FRAME_BODY`], without the size arithmetic itself overflowing.
fn check_body_fits(count: usize, bytes_per_item: u64, overhead: u64) -> Result<u32, WireError> {
    let body = overhead.saturating_add((count as u64).saturating_mul(bytes_per_item));
    if body > MAX_FRAME_BODY as u64 {
        return Err(WireError::Oversized {
            len: u32::try_from(body).unwrap_or(u32::MAX),
            max: MAX_FRAME_BODY,
        });
    }
    // `count` provably fits a u32 now: body ≤ 8 MiB bounds it.
    Ok(u32::try_from(count).expect("count bounded by MAX_FRAME_BODY"))
}

/// Appends `frame`'s complete encoding (length prefix + body) to `buf`.
/// Reusing one buffer across frames keeps the encode path allocation-free
/// in steady state.
///
/// # Errors
///
/// [`WireError::Oversized`] if the frame's body would exceed
/// [`MAX_FRAME_BODY`] — the encoder refuses to produce a frame the peer's
/// [`read_frame`] would reject, and it never truncates a count to make one
/// fit. `buf` is left unchanged on error.
pub fn encode_frame(frame: &Frame, buf: &mut Vec<u8>) -> Result<(), WireError> {
    let start = buf.len();
    push_u32(buf, 0); // Length prefix, patched below.
    let result = (|| {
        match frame {
            Frame::Ingest(IngestMessage::Request(element)) => {
                buf.push(TAG_REQUEST);
                push_u32(buf, element.index());
            }
            Frame::Ingest(IngestMessage::Burst(burst)) => {
                let count = check_body_fits(burst.len(), 4, 5)?;
                buf.push(TAG_BURST);
                push_u32(buf, count);
                for element in burst {
                    push_u32(buf, element.index());
                }
            }
            Frame::Ingest(IngestMessage::Flush) => buf.push(TAG_FLUSH),
            Frame::Ingest(IngestMessage::Reshard(plan, mode)) => {
                let count = check_body_fits(plan.len(), 8, 6)?;
                buf.push(TAG_RESHARD);
                push_u32(buf, count);
                buf.push(match mode {
                    HandoverMode::Cold => 0,
                    HandoverMode::Warm => 1,
                });
                for &(element, shard) in plan.moves() {
                    push_u32(buf, element.index());
                    push_u32(buf, shard);
                }
            }
            Frame::Ack { seq } => {
                buf.push(TAG_ACK);
                buf.extend_from_slice(&seq.to_le_bytes());
            }
            Frame::Lookup { element } => {
                buf.push(TAG_LOOKUP);
                push_u32(buf, element.index());
            }
            Frame::Found(answer) => {
                buf.push(TAG_FOUND);
                push_u32(buf, answer.element.index());
                push_u32(buf, answer.shard);
                push_u32(buf, answer.node.index());
                push_u32(buf, answer.epoch);
                buf.extend_from_slice(&answer.served.to_le_bytes());
            }
            Frame::Stats => buf.push(TAG_STATS),
            Frame::StatsReply(snapshot) => {
                buf.push(TAG_STATS_REPLY);
                snapshot.encode_into(buf);
            }
        }
        // A stats reply's size depends on how many metrics the registry
        // holds, so the cap is checked after encoding rather than predicted
        // from a count the way bursts and plans are.
        let body = buf.len() - start - 4;
        if body > MAX_FRAME_BODY as usize {
            return Err(WireError::Oversized {
                len: u32::try_from(body).unwrap_or(u32::MAX),
                max: MAX_FRAME_BODY,
            });
        }
        Ok(())
    })();
    if result.is_err() {
        buf.truncate(start);
        return result;
    }
    let body_len = (buf.len() - start - 4) as u32;
    buf[start..start + 4].copy_from_slice(&body_len.to_le_bytes());
    Ok(())
}

/// Decodes one frame **body** (everything after the length prefix).
///
/// # Errors
///
/// Any [`WireError`] except `Truncated`/`Oversized`, which concern the
/// length prefix and are raised by [`read_frame`].
pub fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
    let Some((&tag, mut payload)) = body.split_first() else {
        return Err(WireError::Malformed {
            reason: "empty frame body (missing tag)",
        });
    };
    let frame = match tag {
        TAG_REQUEST => {
            let element = take_u32(&mut payload)?;
            Frame::Ingest(IngestMessage::Request(ElementId::new(element)))
        }
        TAG_BURST => {
            let count = take_u32(&mut payload)? as usize;
            if payload.len() != count * 4 {
                return Err(WireError::Malformed {
                    reason: "burst payload length disagrees with its count",
                });
            }
            let mut burst = Vec::with_capacity(count);
            for _ in 0..count {
                burst.push(ElementId::new(take_u32(&mut payload)?));
            }
            Frame::Ingest(IngestMessage::Burst(burst))
        }
        TAG_FLUSH => Frame::Ingest(IngestMessage::Flush),
        TAG_RESHARD => {
            let count = take_u32(&mut payload)? as usize;
            let Some((&mode_byte, rest)) = payload.split_first() else {
                return Err(WireError::Malformed {
                    reason: "reshard frame is missing its handover mode",
                });
            };
            payload = rest;
            let mode = match mode_byte {
                0 => HandoverMode::Cold,
                1 => HandoverMode::Warm,
                _ => {
                    return Err(WireError::Malformed {
                        reason: "unknown handover mode byte",
                    })
                }
            };
            if payload.len() != count * 8 {
                return Err(WireError::Malformed {
                    reason: "reshard payload length disagrees with its move count",
                });
            }
            let mut moves = Vec::with_capacity(count);
            for _ in 0..count {
                let element = ElementId::new(take_u32(&mut payload)?);
                let shard = take_u32(&mut payload)?;
                moves.push((element, shard));
            }
            let plan = ReshardPlan::try_new(moves).map_err(WireError::DuplicateMove)?;
            Frame::Ingest(IngestMessage::Reshard(plan, mode))
        }
        TAG_ACK => {
            let seq = take_u64(&mut payload)?;
            Frame::Ack { seq }
        }
        TAG_LOOKUP => {
            let element = take_u32(&mut payload)?;
            Frame::Lookup {
                element: ElementId::new(element),
            }
        }
        TAG_FOUND => {
            let element = ElementId::new(take_u32(&mut payload)?);
            let shard = take_u32(&mut payload)?;
            let node = NodeId::new(take_u32(&mut payload)?);
            let epoch = take_u32(&mut payload)?;
            let served = take_u64(&mut payload)?;
            Frame::Found(LookupAnswer {
                element,
                shard,
                node,
                epoch,
                served,
            })
        }
        TAG_STATS => Frame::Stats,
        TAG_STATS_REPLY => {
            // The snapshot codec validates the whole payload itself,
            // including its own trailing-byte check.
            let snapshot = MetricsSnapshot::decode(payload).map_err(|_| WireError::Malformed {
                reason: "invalid metrics snapshot payload",
            })?;
            payload = &payload[payload.len()..];
            Frame::StatsReply(snapshot)
        }
        other => return Err(WireError::UnknownTag(other)),
    };
    if !payload.is_empty() {
        return Err(WireError::Malformed {
            reason: "trailing bytes after the frame payload",
        });
    }
    Ok(frame)
}

/// Writes one frame to `writer`, reusing `scratch` as the encode buffer.
///
/// # Errors
///
/// [`ServeError::Protocol`] if the frame is too large to encode (see
/// [`encode_frame`]), [`ServeError::Io`] on a transport failure.
pub fn write_frame<W: Write>(
    writer: &mut W,
    frame: &Frame,
    scratch: &mut Vec<u8>,
) -> Result<(), ServeError> {
    scratch.clear();
    encode_frame(frame, scratch)?;
    writer.write_all(scratch)?;
    Ok(())
}

/// Reads the next frame from `reader`, reusing `scratch` as the body
/// buffer. Returns `Ok(None)` on a clean end of stream (the peer closed the
/// connection **between** frames — the orderly shutdown signal, mirroring
/// [`crate::IngestQueue::recv`] returning `None`).
///
/// # Errors
///
/// [`ServeError::Protocol`]`(`[`WireError::Truncated`]`)` if the stream
/// ends inside a frame, other [`WireError`]s for malformed frames, and
/// [`ServeError::Io`] for transport failures.
pub fn read_frame<R: Read>(
    reader: &mut R,
    scratch: &mut Vec<u8>,
) -> Result<Option<Frame>, ServeError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        let n = reader.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None); // Clean EOF at a frame boundary.
            }
            return Err(WireError::Truncated.into());
        }
        filled += n;
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME_BODY {
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME_BODY,
        }
        .into());
    }
    scratch.clear();
    scratch.resize(len as usize, 0);
    reader.read_exact(scratch).map_err(|error| {
        if error.kind() == std::io::ErrorKind::UnexpectedEof {
            ServeError::Protocol(WireError::Truncated)
        } else {
            ServeError::Io(error)
        }
    })?;
    Ok(Some(decode_body(scratch)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf).unwrap();
        let mut reader = &buf[..];
        let mut scratch = Vec::new();
        let decoded = read_frame(&mut reader, &mut scratch).unwrap().unwrap();
        assert_eq!(decoded, frame);
        assert!(reader.is_empty(), "the frame consumes its exact encoding");
    }

    #[test]
    fn every_frame_kind_round_trips() {
        roundtrip(Frame::Ingest(IngestMessage::Request(ElementId::new(42))));
        roundtrip(Frame::Ingest(IngestMessage::Burst(vec![])));
        roundtrip(Frame::Ingest(IngestMessage::Burst(
            (0..100).map(ElementId::new).collect(),
        )));
        roundtrip(Frame::Ingest(IngestMessage::Flush));
        roundtrip(Frame::Ingest(IngestMessage::Reshard(
            ReshardPlan::empty(),
            HandoverMode::Cold,
        )));
        roundtrip(Frame::Ingest(IngestMessage::Reshard(
            ReshardPlan::new([(ElementId::new(3), 1), (ElementId::new(0), 2)]),
            HandoverMode::Warm,
        )));
        roundtrip(Frame::Ack { seq: u64::MAX });
        roundtrip(Frame::Lookup {
            element: ElementId::new(7),
        });
        roundtrip(Frame::Found(LookupAnswer {
            element: ElementId::new(7),
            shard: 3,
            node: NodeId::new(1),
            epoch: 2,
            served: u64::MAX,
        }));
        roundtrip(Frame::Stats);
        roundtrip(Frame::StatsReply(MetricsSnapshot::default()));
        roundtrip(Frame::StatsReply(
            satn_obs::EngineMetrics::new(4).snapshot(),
        ));
    }

    #[test]
    fn a_corrupt_stats_reply_is_malformed_not_a_panic() {
        let mut buf = Vec::new();
        encode_frame(
            &Frame::StatsReply(satn_obs::EngineMetrics::new(2).snapshot()),
            &mut buf,
        )
        .unwrap();
        // Flip a byte inside the counter-name section.
        let body = &mut buf[4..];
        body[10] ^= 0xFF;
        assert!(matches!(
            decode_body(body),
            Err(WireError::Malformed {
                reason: "invalid metrics snapshot payload"
            })
        ));
        // Truncating the payload is malformed too, not a slice panic.
        let short = &buf[4..buf.len() - 3];
        assert!(matches!(
            decode_body(short),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn encode_rejects_over_cap_bursts_instead_of_truncating_the_count() {
        // One element past the cap: the old `as u32` cast would have
        // happily encoded a frame the reader rejects as Oversized.
        let burst = vec![ElementId::new(0); MAX_BURST_ELEMENTS + 1];
        let mut buf = vec![0xAB];
        let err = encode_frame(&Frame::Ingest(IngestMessage::Burst(burst)), &mut buf).unwrap_err();
        let over = 5 + 4 * (MAX_BURST_ELEMENTS as u32 + 1);
        assert!(matches!(err, WireError::Oversized { len, max }
            if len == over && max == MAX_FRAME_BODY));
        assert_eq!(buf, vec![0xAB], "a failed encode leaves the buffer intact");

        // Exactly at the cap round-trips.
        let burst = vec![ElementId::new(9); MAX_BURST_ELEMENTS];
        let mut buf = Vec::new();
        encode_frame(
            &Frame::Ingest(IngestMessage::Burst(burst.clone())),
            &mut buf,
        )
        .unwrap();
        assert_eq!(buf.len(), 4 + 5 + 4 * MAX_BURST_ELEMENTS);
        assert!(buf.len() - 4 <= MAX_FRAME_BODY as usize);
        let mut reader = &buf[..];
        let decoded = read_frame(&mut reader, &mut Vec::new()).unwrap().unwrap();
        assert_eq!(decoded, Frame::Ingest(IngestMessage::Burst(burst)));
    }

    #[test]
    fn encode_rejects_over_cap_reshard_plans() {
        let moves: Vec<_> = (0..=MAX_PLAN_MOVES as u32)
            .map(|i| (ElementId::new(i), 0u32))
            .collect();
        let plan = ReshardPlan::new(moves);
        let err = encode_frame(
            &Frame::Ingest(IngestMessage::Reshard(plan, HandoverMode::Cold)),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(matches!(err, WireError::Oversized { .. }));
    }

    #[test]
    fn clean_eof_is_a_shutdown_not_an_error() {
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty, &mut Vec::new()), Ok(None)));
    }

    #[test]
    fn eof_inside_the_header_is_truncation() {
        let mut partial: &[u8] = &[5, 0];
        let err = read_frame(&mut partial, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, ServeError::Protocol(WireError::Truncated)));
    }

    #[test]
    fn eof_inside_the_body_is_truncation() {
        let mut buf = Vec::new();
        encode_frame(
            &Frame::Ingest(IngestMessage::Burst((0..10).map(ElementId::new).collect())),
            &mut buf,
        )
        .unwrap();
        buf.truncate(buf.len() - 3);
        let mut reader = &buf[..];
        let err = read_frame(&mut reader, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, ServeError::Protocol(WireError::Truncated)));
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.push(TAG_FLUSH);
        let mut reader = &bytes[..];
        let err = read_frame(&mut reader, &mut Vec::new()).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Protocol(WireError::Oversized { len: u32::MAX, .. })
        ));
    }

    #[test]
    fn unknown_tags_and_garbage_are_rejected() {
        assert!(matches!(decode_body(&[99]), Err(WireError::UnknownTag(99))));
        assert!(matches!(decode_body(&[]), Err(WireError::Malformed { .. })));
        // A flush with trailing garbage.
        assert!(matches!(
            decode_body(&[TAG_FLUSH, 0xAA]),
            Err(WireError::Malformed { .. })
        ));
        // A burst whose count disagrees with its payload length.
        let mut body = vec![TAG_BURST];
        body.extend_from_slice(&7u32.to_le_bytes());
        body.extend_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            decode_body(&body),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn duplicate_reshard_moves_error_instead_of_panicking() {
        let mut body = vec![TAG_RESHARD];
        body.extend_from_slice(&2u32.to_le_bytes());
        body.push(0); // handover mode: cold
        for _ in 0..2 {
            body.extend_from_slice(&5u32.to_le_bytes()); // element 5, twice
            body.extend_from_slice(&1u32.to_le_bytes());
        }
        assert!(matches!(
            decode_body(&body),
            Err(WireError::DuplicateMove(element)) if element == ElementId::new(5)
        ));
    }

    #[test]
    fn unknown_handover_modes_are_malformed_not_a_panic() {
        let mut body = vec![TAG_RESHARD];
        body.extend_from_slice(&0u32.to_le_bytes());
        body.push(7); // neither cold (0) nor warm (1)
        assert!(matches!(
            decode_body(&body),
            Err(WireError::Malformed {
                reason: "unknown handover mode byte"
            })
        ));
        // A mode-less (pre-handover-protocol) reshard frame is malformed too.
        let body = {
            let mut body = vec![TAG_RESHARD];
            body.extend_from_slice(&0u32.to_le_bytes());
            body
        };
        assert!(matches!(
            decode_body(&body),
            Err(WireError::Malformed {
                reason: "reshard frame is missing its handover mode"
            })
        ));
    }
}
