//! # satn-analysis
//!
//! Analysis toolkit for self-adjusting single-source tree networks: the
//! theoretical quantities of the paper turned into executable checks.
//!
//! * [`WorkingSetTracker`] / [`working_set_bound`] — working-set ranks and the
//!   working-set lower bound of Section 2,
//! * [`mru`] — the ideal MRU reference tree and an MRU-order checker,
//! * [`RotorPushAuditor`] / [`RandomPushAuditor`] — per-round verification of
//!   the amortized analyses behind Theorem 7 (12-competitiveness) and
//!   Theorem 11 (16-competitiveness),
//! * [`Lemma8Adversary`] / [`run_lemma8`] — the adaptive adversary showing
//!   that Rotor-Push lacks the working-set property,
//! * [`access_cost_differences`] / [`Histogram`] / [`competitive_report`] —
//!   the cross-algorithm comparisons of the empirical section.
//!
//! ```
//! use satn_analysis::working_set_bound;
//! use satn_tree::ElementId;
//!
//! let requests: Vec<ElementId> = [0u32, 1, 0, 2, 1].iter().map(|&i| ElementId::new(i)).collect();
//! let bound = working_set_bound(4, &requests);
//! assert!(bound > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod adversary;
mod comparison;
mod convergence;
mod credits;
mod entropy;
mod fenwick;
mod hindsight;
pub mod mru;
mod working_set;

pub use adversary::{run_lemma8, Lemma8Adversary, Lemma8Report};
pub use comparison::{access_cost_differences, competitive_report, CompetitiveReport, Histogram};
pub use convergence::{
    frequency_displacement, mru_displacement, track_convergence, ConvergencePoint,
};
pub use credits::{
    flip_rank_weight, level_weight, AuditReport, AuditRound, RandomPushAuditor, RotorPushAuditor,
    RANDOM_COMPETITIVE_RATIO, RANDOM_CREDIT_FACTOR, ROTOR_COMPETITIVE_RATIO, ROTOR_CREDIT_FACTOR,
};
pub use entropy::{entropy, entropy_static_lower_bound, static_optimal_expected_cost};
pub use fenwick::FenwickTree;
pub use hindsight::{
    hindsight_report, static_hindsight_mean_cost, HindsightReport, HindsightWindow,
};
pub use working_set::{working_set_bound, working_set_ranks, WorkingSetTracker};
