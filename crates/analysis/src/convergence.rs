//! Convergence of a self-adjusting tree towards its reference layouts.
//!
//! The paper's analysis compares the online tree against two idealized
//! layouts: the *MRU tree* (more recently used elements closer to the root;
//! Section 1.1 and [11]) and the *frequency-optimal static tree* that
//! Static-Opt uses in the evaluation. The helpers in this module measure how
//! far a concrete occupancy is from those references and track the distance
//! while an algorithm serves a request sequence, which quantifies *how fast*
//! the self-adjustment exploits locality — a view the paper's aggregate plots
//! do not show directly.

use satn_core::SelfAdjustingTree;
use satn_tree::{ElementId, Occupancy, TreeError};

/// The ideal level of an element whose rank (by recency or frequency) is
/// `rank`, counted from 1: the most important element sits at level 0, the
/// next two at level 1, and so on.
fn ideal_level(rank: u64) -> u32 {
    debug_assert!(rank >= 1);
    63 - (rank.min(u64::MAX / 2)).leading_zeros() // floor(log2(rank))
}

/// The average (per accessed element) absolute difference between the current
/// level of each element and its ideal MRU level.
///
/// `last_access[i]` is the time of the last access of element `i` (larger =
/// more recent) or `None` if the element has not been accessed yet;
/// unaccessed elements are ignored.
pub fn mru_displacement(occupancy: &Occupancy, last_access: &[Option<u64>]) -> f64 {
    let mut accessed: Vec<(u64, ElementId)> = last_access
        .iter()
        .enumerate()
        .filter_map(|(i, &t)| t.map(|t| (t, ElementId::new(i as u32))))
        .collect();
    if accessed.is_empty() {
        return 0.0;
    }
    // Most recent first.
    accessed.sort_by_key(|&(time, _)| std::cmp::Reverse(time));
    let total: u64 = accessed
        .iter()
        .enumerate()
        .map(|(index, &(_, element))| {
            let ideal = ideal_level(index as u64 + 1);
            let actual = occupancy.level_of(element);
            u64::from(actual.abs_diff(ideal))
        })
        .sum();
    total as f64 / accessed.len() as f64
}

/// The average absolute difference between each element's current level and
/// its level in the frequency-optimal static placement for `weights`
/// (the placement Static-Opt uses). Elements with zero weight are ignored.
pub fn frequency_displacement(occupancy: &Occupancy, weights: &[f64]) -> f64 {
    let mut weighted: Vec<(f64, ElementId)> = weights
        .iter()
        .enumerate()
        .filter(|&(_, &w)| w > 0.0)
        .map(|(i, &w)| (w, ElementId::new(i as u32)))
        .collect();
    if weighted.is_empty() {
        return 0.0;
    }
    weighted.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let total: u64 = weighted
        .iter()
        .enumerate()
        .map(|(index, &(_, element))| {
            let ideal = ideal_level(index as u64 + 1);
            let actual = occupancy.level_of(element);
            u64::from(actual.abs_diff(ideal))
        })
        .sum();
    total as f64 / weighted.len() as f64
}

/// One checkpoint of a convergence run.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergencePoint {
    /// How many requests had been served when the snapshot was taken.
    pub requests_served: usize,
    /// Average distance (in levels) from the ideal MRU layout.
    pub mru_displacement: f64,
    /// Average distance (in levels) from the frequency-optimal static layout
    /// of the whole sequence.
    pub frequency_displacement: f64,
    /// Mean total cost per request over the window since the previous
    /// checkpoint.
    pub window_mean_cost: f64,
}

/// Serves `requests` on `algorithm`, taking `num_checkpoints` evenly spaced
/// snapshots of the convergence metrics.
///
/// # Errors
///
/// Propagates the first error returned by the algorithm (e.g. a request to an
/// element outside the tree).
///
/// # Panics
///
/// Panics if `num_checkpoints` is zero or `requests` is empty.
pub fn track_convergence<A: SelfAdjustingTree + ?Sized>(
    algorithm: &mut A,
    requests: &[ElementId],
    num_checkpoints: usize,
) -> Result<Vec<ConvergencePoint>, TreeError> {
    assert!(num_checkpoints > 0, "need at least one checkpoint");
    assert!(!requests.is_empty(), "need at least one request");
    let num_elements = algorithm.occupancy().num_elements();
    // Frequencies of the full sequence define the static reference layout.
    let mut frequencies = vec![0u64; num_elements as usize];
    for &request in requests {
        if request.index() < num_elements {
            frequencies[request.usize()] += 1;
        }
    }
    let total: u64 = frequencies.iter().sum();
    let weights: Vec<f64> = frequencies
        .iter()
        .map(|&f| f as f64 / total.max(1) as f64)
        .collect();

    let window = requests.len().div_ceil(num_checkpoints);
    let mut last_access: Vec<Option<u64>> = vec![None; num_elements as usize];
    let mut points = Vec::with_capacity(num_checkpoints);
    let mut window_cost = 0u64;
    let mut window_len = 0usize;
    for (t, &request) in requests.iter().enumerate() {
        let cost = algorithm.serve(request)?;
        window_cost += cost.total();
        window_len += 1;
        if request.index() < num_elements {
            last_access[request.usize()] = Some(t as u64 + 1);
        }
        if (t + 1) % window == 0 || t + 1 == requests.len() {
            points.push(ConvergencePoint {
                requests_served: t + 1,
                mru_displacement: mru_displacement(algorithm.occupancy(), &last_access),
                frequency_displacement: frequency_displacement(algorithm.occupancy(), &weights),
                window_mean_cost: window_cost as f64 / window_len.max(1) as f64,
            });
            window_cost = 0;
            window_len = 0;
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use satn_core::{RotorPush, StaticOblivious};
    use satn_tree::CompleteTree;

    fn identity(levels: u32) -> Occupancy {
        Occupancy::identity(CompleteTree::with_levels(levels).unwrap())
    }

    #[test]
    fn ideal_levels_follow_the_bfs_layout() {
        assert_eq!(ideal_level(1), 0);
        assert_eq!(ideal_level(2), 1);
        assert_eq!(ideal_level(3), 1);
        assert_eq!(ideal_level(4), 2);
        assert_eq!(ideal_level(7), 2);
        assert_eq!(ideal_level(8), 3);
    }

    #[test]
    fn displacement_is_zero_for_a_perfectly_converged_tree() {
        // Identity occupancy: element i at node i. Give element i the weight
        // of its own BFS position, so the identity layout *is* the
        // frequency-optimal layout.
        let occ = identity(4);
        let weights: Vec<f64> = (0..15).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        assert_eq!(frequency_displacement(&occ, &weights), 0.0);
        // MRU: access elements in reverse BFS order so element 0 is most
        // recent ⇒ identity is also the ideal MRU layout.
        let last_access: Vec<Option<u64>> = (0..15u64).map(|i| Some(100 - i)).collect();
        assert_eq!(mru_displacement(&occ, &last_access), 0.0);
    }

    #[test]
    fn displacement_detects_a_maximally_wrong_layout() {
        // Element 0 is the hottest but sits at a leaf.
        let occ = identity(4);
        let mut weights = vec![0.0; 15];
        weights[14] = 0.9; // element 14 (a leaf in identity layout) is hottest
        weights[0] = 0.1;
        let displacement = frequency_displacement(&occ, &weights);
        // Ideal: element 14 at level 0 (actual 3), element 0 at level 1
        // (actual 0): mean = (3 + 1) / 2.
        assert!((displacement - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unaccessed_elements_do_not_contribute() {
        let occ = identity(3);
        assert_eq!(mru_displacement(&occ, &[None; 7]), 0.0);
        assert_eq!(frequency_displacement(&occ, &[0.0; 7]), 0.0);
    }

    #[test]
    fn rotor_push_converges_on_a_skewed_sequence() {
        // Keep requesting a small hot set that initially lives at the leaves;
        // the tree should end up much closer to the frequency layout than the
        // static tree that never adapts.
        let levels = 7u32;
        let hot: Vec<ElementId> = (120..127u32).map(ElementId::new).collect();
        let requests: Vec<ElementId> = (0..2_000).map(|i| hot[i % hot.len()]).collect();
        let mut rotor = RotorPush::new(identity(levels));
        let mut frozen = StaticOblivious::new(identity(levels));
        let rotor_points = track_convergence(&mut rotor, &requests, 4).unwrap();
        let static_points = track_convergence(&mut frozen, &requests, 4).unwrap();
        assert_eq!(rotor_points.len(), 4);
        let rotor_final = rotor_points.last().unwrap();
        let static_final = static_points.last().unwrap();
        assert!(rotor_final.frequency_displacement < static_final.frequency_displacement);
        assert!(rotor_final.window_mean_cost < static_final.window_mean_cost);
        // Cost improves over time for the self-adjusting tree.
        assert!(rotor_points[0].window_mean_cost > rotor_final.window_mean_cost);
    }

    #[test]
    fn checkpoints_cover_the_whole_sequence() {
        let requests: Vec<ElementId> = (0..100u32).map(|i| ElementId::new(i % 15)).collect();
        let mut alg = RotorPush::new(identity(4));
        let points = track_convergence(&mut alg, &requests, 7).unwrap();
        assert_eq!(points.last().unwrap().requests_served, 100);
        assert!(points.len() <= 7);
        for pair in points.windows(2) {
            assert!(pair[0].requests_served < pair[1].requests_served);
        }
    }

    #[test]
    #[should_panic(expected = "checkpoint")]
    fn zero_checkpoints_are_rejected() {
        let mut alg = RotorPush::new(identity(3));
        let _ = track_convergence(&mut alg, &[ElementId::new(0)], 0);
    }
}
