//! A Fenwick (binary indexed) tree over request time slots, the indexing
//! structure behind the O(log m) working-set rank queries.

/// A Fenwick tree holding 0/1 marks over `len` positions with prefix-sum
/// queries.
#[derive(Debug, Clone)]
pub struct FenwickTree {
    tree: Vec<u32>,
}

impl FenwickTree {
    /// Creates a tree over `len` positions, all unmarked.
    pub fn new(len: usize) -> Self {
        FenwickTree {
            tree: vec![0; len + 1],
        }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Returns `true` if the tree has no positions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `delta` at `position` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    pub fn add(&mut self, position: usize, delta: i32) {
        assert!(position < self.len(), "position {position} out of range");
        let mut index = position + 1;
        while index < self.tree.len() {
            self.tree[index] = (self.tree[index] as i64 + delta as i64) as u32;
            index += index & index.wrapping_neg();
        }
    }

    /// Sum of the values at positions `0..=position`.
    pub fn prefix_sum(&self, position: usize) -> u32 {
        let mut index = (position + 1).min(self.len());
        let mut sum = 0;
        while index > 0 {
            sum += self.tree[index];
            index -= index & index.wrapping_neg();
        }
        sum
    }

    /// Sum of the values over the whole range.
    pub fn total(&self) -> u32 {
        if self.is_empty() {
            0
        } else {
            self.prefix_sum(self.len() - 1)
        }
    }

    /// Sum of the values at positions `from..len` (suffix sum).
    pub fn suffix_sum(&self, from: usize) -> u32 {
        if from == 0 {
            self.total()
        } else {
            self.total() - self.prefix_sum(from - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_and_suffix_sums() {
        let mut fenwick = FenwickTree::new(10);
        fenwick.add(0, 1);
        fenwick.add(3, 1);
        fenwick.add(9, 1);
        assert_eq!(fenwick.prefix_sum(0), 1);
        assert_eq!(fenwick.prefix_sum(2), 1);
        assert_eq!(fenwick.prefix_sum(3), 2);
        assert_eq!(fenwick.prefix_sum(9), 3);
        assert_eq!(fenwick.total(), 3);
        assert_eq!(fenwick.suffix_sum(0), 3);
        assert_eq!(fenwick.suffix_sum(4), 1);
        assert_eq!(fenwick.suffix_sum(9), 1);
    }

    #[test]
    fn add_and_remove() {
        let mut fenwick = FenwickTree::new(5);
        fenwick.add(2, 1);
        fenwick.add(2, -1);
        assert_eq!(fenwick.total(), 0);
        assert!(!fenwick.is_empty());
        assert_eq!(fenwick.len(), 5);
    }

    #[test]
    fn matches_naive_prefix_sums() {
        let mut fenwick = FenwickTree::new(64);
        let mut naive = vec![0i64; 64];
        let updates = [(3usize, 1i32), (7, 1), (3, -1), (63, 1), (0, 1), (31, 1)];
        for (pos, delta) in updates {
            fenwick.add(pos, delta);
            naive[pos] += i64::from(delta);
        }
        for position in 0..64 {
            let expected: i64 = naive[..=position].iter().sum();
            assert_eq!(
                i64::from(fenwick.prefix_sum(position)),
                expected,
                "{position}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_rejects_out_of_range() {
        FenwickTree::new(3).add(3, 1);
    }

    #[test]
    fn empty_tree() {
        let fenwick = FenwickTree::new(0);
        assert!(fenwick.is_empty());
        assert_eq!(fenwick.total(), 0);
    }
}
