//! Working-set ranks and the working-set bound (Section 2 of the paper).

use crate::fenwick::FenwickTree;
use satn_tree::ElementId;

/// Tracks working-set ranks online.
///
/// The working set of an element `e` at round `t` is the set of distinct
/// elements (including `e`) accessed since the last access of `e` before
/// round `t`; its size is the *rank* of `e`. For an element that has never
/// been accessed, the rank is defined as the number of distinct elements
/// accessed so far plus one (the working set is "everything seen, plus `e`").
///
/// The working-set bound of a sequence is `Σ_t log2(rank_t(σ_t))`; the paper
/// shows it is (up to a constant) a lower bound on the cost of *any*
/// algorithm, which makes it the reference for empirical competitive ratios.
///
/// Rank queries and updates take `O(log m)` time for a sequence of length `m`
/// (a Fenwick tree over time slots marks, for every element, the time of its
/// most recent access).
#[derive(Debug, Clone)]
pub struct WorkingSetTracker {
    /// Marks time slots that are the most recent access of some element.
    recent_marks: FenwickTree,
    /// Last access time (1-based) of every element; 0 = never accessed.
    last_access: Vec<u64>,
    /// Number of accesses processed so far.
    clock: u64,
    /// Number of distinct elements accessed so far.
    distinct: u64,
    /// Running working-set bound (sum of log2 ranks).
    bound: f64,
}

impl WorkingSetTracker {
    /// Creates a tracker for `num_elements` elements and a sequence of at
    /// most `capacity` requests.
    pub fn new(num_elements: u32, capacity: usize) -> Self {
        WorkingSetTracker {
            recent_marks: FenwickTree::new(capacity),
            last_access: vec![0; num_elements as usize],
            clock: 0,
            distinct: 0,
            bound: 0.0,
        }
    }

    /// Number of requests processed.
    pub fn requests(&self) -> u64 {
        self.clock
    }

    /// Number of distinct elements accessed so far.
    pub fn distinct_accessed(&self) -> u64 {
        self.distinct
    }

    /// Returns the rank the element would have if it were accessed now,
    /// without recording an access.
    ///
    /// # Panics
    ///
    /// Panics if the element id is out of range.
    pub fn rank(&self, element: ElementId) -> u64 {
        let last = self.last_access[element.usize()];
        if last == 0 {
            self.distinct + 1
        } else {
            // Elements whose most recent access is at time >= last, including
            // `e` itself (whose mark sits exactly at `last`).
            u64::from(self.recent_marks.suffix_sum(last as usize - 1))
        }
    }

    /// Records an access and returns the rank of the accessed element at this
    /// round.
    ///
    /// # Panics
    ///
    /// Panics if the element id is out of range or the configured capacity is
    /// exceeded.
    pub fn access(&mut self, element: ElementId) -> u64 {
        let rank = self.rank(element);
        let previous = self.last_access[element.usize()];
        self.clock += 1;
        assert!(
            self.clock as usize <= self.recent_marks.len(),
            "working-set tracker capacity exceeded"
        );
        if previous == 0 {
            self.distinct += 1;
        } else {
            self.recent_marks.add(previous as usize - 1, -1);
        }
        self.recent_marks.add(self.clock as usize - 1, 1);
        self.last_access[element.usize()] = self.clock;
        self.bound += (rank as f64).log2().max(0.0);
        rank
    }

    /// The working-set bound `Σ_t log2(rank_t(σ_t))` accumulated so far.
    pub fn bound(&self) -> f64 {
        self.bound
    }
}

/// Computes the working-set bound of a whole sequence over `num_elements`
/// elements.
pub fn working_set_bound(num_elements: u32, requests: &[ElementId]) -> f64 {
    let mut tracker = WorkingSetTracker::new(num_elements, requests.len());
    for &request in requests {
        tracker.access(request);
    }
    tracker.bound()
}

/// Computes the per-request working-set ranks of a sequence.
pub fn working_set_ranks(num_elements: u32, requests: &[ElementId]) -> Vec<u64> {
    let mut tracker = WorkingSetTracker::new(num_elements, requests.len());
    requests.iter().map(|&r| tracker.access(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<ElementId> {
        raw.iter().map(|&i| ElementId::new(i)).collect()
    }

    /// Naive O(m²) reference implementation of working-set ranks.
    fn naive_ranks(requests: &[ElementId]) -> Vec<u64> {
        let mut ranks = Vec::new();
        for (t, &e) in requests.iter().enumerate() {
            let last = requests[..t].iter().rposition(|&x| x == e);
            let window = match last {
                Some(pos) => &requests[pos..t],
                None => &requests[..t],
            };
            let mut distinct: Vec<ElementId> = window.to_vec();
            distinct.sort_unstable();
            distinct.dedup();
            let includes_e = distinct.contains(&e);
            ranks.push(distinct.len() as u64 + u64::from(!includes_e));
        }
        ranks
    }

    #[test]
    fn ranks_of_a_simple_sequence() {
        // Sequence: a b a c b b
        let requests = ids(&[0, 1, 0, 2, 1, 1]);
        let ranks = working_set_ranks(3, &requests);
        assert_eq!(ranks, vec![1, 2, 2, 3, 3, 1]);
    }

    #[test]
    fn first_accesses_count_everything_seen_plus_one() {
        let requests = ids(&[0, 1, 2, 3]);
        let ranks = working_set_ranks(4, &requests);
        assert_eq!(ranks, vec![1, 2, 3, 4]);
    }

    #[test]
    fn repeated_element_has_rank_one() {
        let requests = ids(&[5, 5, 5, 5]);
        let ranks = working_set_ranks(8, &requests);
        assert_eq!(ranks, vec![1, 1, 1, 1]);
        assert_eq!(working_set_bound(8, &requests), 0.0);
    }

    #[test]
    fn matches_naive_reference_on_pseudorandom_sequences() {
        let requests: Vec<ElementId> = (0..400u32)
            .map(|i| ElementId::new((i * 37 + i * i) % 23))
            .collect();
        assert_eq!(working_set_ranks(23, &requests), naive_ranks(&requests));
    }

    #[test]
    fn bound_is_sum_of_log_ranks() {
        let requests = ids(&[0, 1, 2, 0, 1, 2]);
        let ranks = working_set_ranks(3, &requests);
        let expected: f64 = ranks.iter().map(|&r| (r as f64).log2()).sum();
        assert!((working_set_bound(3, &requests) - expected).abs() < 1e-9);
    }

    #[test]
    fn rank_query_does_not_mutate() {
        let mut tracker = WorkingSetTracker::new(8, 16);
        tracker.access(ElementId::new(1));
        tracker.access(ElementId::new(2));
        let before = tracker.rank(ElementId::new(1));
        assert_eq!(before, tracker.rank(ElementId::new(1)));
        assert_eq!(before, 2);
        assert_eq!(tracker.rank(ElementId::new(5)), 3); // never accessed
        assert_eq!(tracker.distinct_accessed(), 2);
        assert_eq!(tracker.requests(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity exceeded")]
    fn capacity_is_enforced() {
        let mut tracker = WorkingSetTracker::new(4, 2);
        tracker.access(ElementId::new(0));
        tracker.access(ElementId::new(1));
        tracker.access(ElementId::new(2));
    }
}
