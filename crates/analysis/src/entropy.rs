//! Entropy-based lower bounds for static tree layouts.
//!
//! The empirical section of the paper uses `Static-Opt` — the best static
//! placement for the measured frequencies — as a reference point. This module
//! provides the information-theoretic counterpart: the empirical entropy of a
//! request distribution, the expected access cost of the optimal static
//! placement, and a Shannon-style lower bound relating the two, so that
//! experiments can report how close `Static-Opt` (and the self-adjusting
//! algorithms) come to the entropy of the workload.

/// The Shannon entropy (in bits) of a weight vector. Weights do not have to
/// be normalized; zero weights are ignored.
pub fn entropy(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().filter(|&&w| w > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    weights
        .iter()
        .filter(|&&w| w > 0.0)
        .map(|&w| {
            let p = w / total;
            -p * p.log2()
        })
        .sum()
}

/// The expected access cost (`level + 1`) of the best *static* placement of
/// elements with the given weights on a complete binary tree: the heaviest
/// element at the root, the next two at level 1, and so on (the layout
/// `Static-Opt` uses).
///
/// Zero-weight elements contribute nothing. Weights do not have to be
/// normalized.
pub fn static_optimal_expected_cost(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().filter(|&&w| w > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = weights.iter().copied().filter(|&w| w > 0.0).collect();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    sorted
        .iter()
        .enumerate()
        .map(|(index, &w)| {
            let level = (64 - (index as u64 + 1).leading_zeros() - 1) as f64; // floor(log2(rank))
            (w / total) * (level + 1.0)
        })
        .sum()
}

/// A lower bound on the expected access cost of *any* static placement on a
/// complete binary tree with `levels` levels, derived from the entropy of the
/// weights.
///
/// Assigning an element to level `ℓ` corresponds to a code of length
/// `ℓ + 1 + log2(levels / 2)` (level `ℓ` has `2^ℓ` slots, and there are
/// `levels` levels, so these lengths satisfy Kraft's inequality). Shannon's
/// source-coding bound then gives
/// `E[ℓ + 1] ≥ H(p) − log2(levels / 2)`, and the access cost is trivially at
/// least 1.
pub fn entropy_static_lower_bound(weights: &[f64], levels: u32) -> f64 {
    let h = entropy(weights);
    let slack = (f64::from(levels.max(1)) / 2.0).log2();
    (h - slack).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use satn_tree::{CompleteTree, Occupancy};

    #[test]
    fn entropy_of_uniform_and_degenerate_distributions() {
        let uniform = vec![1.0; 16];
        assert!((entropy(&uniform) - 4.0).abs() < 1e-12);
        let degenerate = vec![0.0, 5.0, 0.0];
        assert_eq!(entropy(&degenerate), 0.0);
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn entropy_ignores_normalization() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b: Vec<f64> = a.iter().map(|w| w * 17.0).collect();
        assert!((entropy(&a) - entropy(&b)).abs() < 1e-12);
    }

    #[test]
    fn static_optimal_cost_matches_hand_computation() {
        // Four equally heavy elements: one at level 0, two at level 1, one at
        // level 2 ⇒ expected cost (1 + 2 + 2 + 3) / 4 = 2.
        let cost = static_optimal_expected_cost(&[1.0; 4]);
        assert!((cost - 2.0).abs() < 1e-12);
        // A single element always costs 1.
        assert!((static_optimal_expected_cost(&[3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(static_optimal_expected_cost(&[]), 0.0);
    }

    #[test]
    fn static_optimal_cost_is_within_two_of_the_entropy() {
        // Classic fact: placing the i-th most probable element at depth
        // floor(log2 i) costs at most H(p) + 2 in expectation.
        let distributions: Vec<Vec<f64>> = vec![
            vec![1.0; 127],
            (1..=127).map(|i| 1.0 / i as f64).collect(),
            (1..=127).map(|i| 1.0 / (i * i) as f64).collect(),
            {
                let mut skewed = vec![0.001; 127];
                skewed[42] = 10.0;
                skewed
            },
        ];
        for weights in distributions {
            let h = entropy(&weights);
            let cost = static_optimal_expected_cost(&weights);
            assert!(cost <= h + 2.0 + 1e-9, "cost {cost} vs entropy {h}");
            assert!(cost >= 1.0);
        }
    }

    #[test]
    fn entropy_lower_bound_is_respected_by_the_optimal_static_layout() {
        let tree = CompleteTree::with_levels(7).unwrap();
        let distributions: Vec<Vec<f64>> = vec![
            vec![1.0; 127],
            (1..=127).map(|i| 1.0 / i as f64).collect(),
            (1..=127).map(|i| (128 - i) as f64).collect(),
        ];
        for weights in distributions {
            let bound = entropy_static_lower_bound(&weights, tree.num_levels());
            let optimal = static_optimal_expected_cost(&weights);
            assert!(
                optimal + 1e-9 >= bound,
                "optimal {optimal} must not beat the entropy bound {bound}"
            );
            // The bound also holds for an arbitrary concrete placement, here
            // the identity placement evaluated through the tree substrate.
            let occ = Occupancy::identity(tree);
            let total: f64 = weights.iter().sum();
            let normalized: Vec<f64> = weights.iter().map(|w| w / total).collect();
            assert!(occ.expected_access_cost(&normalized) + 1e-9 >= bound);
        }
    }

    #[test]
    fn lower_bound_never_drops_below_one() {
        assert_eq!(entropy_static_lower_bound(&[1.0], 5), 1.0);
        assert_eq!(entropy_static_lower_bound(&[], 12), 1.0);
    }
}
