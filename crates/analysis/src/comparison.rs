//! Cross-algorithm comparisons: per-request cost differences (Figure 5b) and
//! empirical competitive-ratio reports against the paper's lower bounds.

use crate::working_set::working_set_bound;
use satn_core::SelfAdjustingTree;
use satn_tree::{ElementId, ServeCost, TreeError};

/// Runs two algorithms on the same request sequence and returns, for every
/// request, the difference of their **access** costs (`first − second`).
/// This is the quantity plotted as a histogram in Figure 5b (Rotor-Push
/// minus Random-Push over uniform sequences).
///
/// # Errors
///
/// Propagates the first serving error of either algorithm.
pub fn access_cost_differences<A, B>(
    first: &mut A,
    second: &mut B,
    requests: &[ElementId],
) -> Result<Vec<i64>, TreeError>
where
    A: SelfAdjustingTree + ?Sized,
    B: SelfAdjustingTree + ?Sized,
{
    let mut differences = Vec::with_capacity(requests.len());
    for &request in requests {
        let a = first.serve(request)?;
        let b = second.serve(request)?;
        differences.push(a.access as i64 - b.access as i64);
    }
    Ok(differences)
}

/// A fixed-width integer histogram over a symmetric range, mirroring the
/// log-scale histogram of Figure 5b.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    min: i64,
    max: i64,
    counts: Vec<u64>,
    total: u64,
    sum: i64,
}

impl Histogram {
    /// Creates a histogram with one bucket per integer value in
    /// `[min, max]`; values outside the range are clamped to the end buckets.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: i64, max: i64) -> Self {
        assert!(min <= max, "histogram range must not be empty");
        Histogram {
            min,
            max,
            counts: vec![0; (max - min + 1) as usize],
            total: 0,
            sum: 0,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, value: i64) {
        let clamped = value.clamp(self.min, self.max);
        self.counts[(clamped - self.min) as usize] += 1;
        self.total += 1;
        self.sum += value;
    }

    /// Adds many observations.
    pub fn record_all<I: IntoIterator<Item = i64>>(&mut self, values: I) {
        for value in values {
            self.record(value);
        }
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The empirical probability of each bucket, as `(value, probability)`
    /// pairs (only non-empty buckets are listed).
    pub fn probabilities(&self) -> Vec<(i64, f64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(index, &count)| (self.min + index as i64, count as f64 / self.total as f64))
            .collect()
    }

    /// The raw count of a specific value's bucket (0 if outside the range).
    pub fn count(&self, value: i64) -> u64 {
        if value < self.min || value > self.max {
            0
        } else {
            self.counts[(value - self.min) as usize]
        }
    }
}

/// The empirical cost report of one algorithm on one workload, with the two
/// lower-bound proxies used by the paper: the working-set bound and the best
/// static tree.
#[derive(Debug, Clone, PartialEq)]
pub struct CompetitiveReport {
    /// Name of the measured algorithm.
    pub algorithm: String,
    /// Total cost (access + adjustment) paid by the algorithm.
    pub total_cost: u64,
    /// Total access cost only.
    pub access_cost: u64,
    /// Total adjustment cost only.
    pub adjustment_cost: u64,
    /// The working-set bound `WS(σ)` of the sequence.
    pub working_set_bound: f64,
    /// The total access cost of the frequency-ordered static tree.
    pub static_opt_cost: u64,
    /// Number of requests.
    pub requests: usize,
}

impl CompetitiveReport {
    /// Cost per request.
    pub fn mean_cost(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_cost as f64 / self.requests as f64
        }
    }

    /// Ratio of the algorithm's cost to the working-set lower bound
    /// (infinite for a zero bound).
    pub fn ratio_to_working_set_bound(&self) -> f64 {
        if self.working_set_bound <= 0.0 {
            f64::INFINITY
        } else {
            self.total_cost as f64 / self.working_set_bound
        }
    }

    /// Ratio of the algorithm's cost to the static-optimum access cost.
    pub fn ratio_to_static_opt(&self) -> f64 {
        if self.static_opt_cost == 0 {
            f64::INFINITY
        } else {
            self.total_cost as f64 / self.static_opt_cost as f64
        }
    }
}

/// Measures an algorithm on a request sequence and relates its cost to the
/// working-set bound and the static optimum.
///
/// # Errors
///
/// Propagates serving errors.
pub fn competitive_report<A>(
    algorithm: &mut A,
    num_elements: u32,
    requests: &[ElementId],
) -> Result<CompetitiveReport, TreeError>
where
    A: SelfAdjustingTree + ?Sized,
{
    let mut static_opt = satn_core::StaticOpt::from_sequence(algorithm.tree(), requests)?;
    let static_opt_cost = static_opt.serve_sequence(requests)?.total().access;

    let mut total = ServeCost::ZERO;
    for &request in requests {
        total += algorithm.serve(request)?;
    }
    Ok(CompetitiveReport {
        algorithm: algorithm.name().to_owned(),
        total_cost: total.total(),
        access_cost: total.access,
        adjustment_cost: total.adjustment,
        working_set_bound: working_set_bound(num_elements, requests),
        static_opt_cost,
        requests: requests.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use satn_core::{RandomPush, RotorPush, StaticOblivious};
    use satn_tree::{CompleteTree, Occupancy};

    fn uniform_requests(n: u32, len: usize, seed: u64) -> Vec<ElementId> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| ElementId::new(rng.gen_range(0..n)))
            .collect()
    }

    #[test]
    fn histogram_basics() {
        let mut histogram = Histogram::new(-3, 3);
        histogram.record_all([0, 0, 1, -2, 5, -9]);
        assert_eq!(histogram.total(), 6);
        assert_eq!(histogram.count(0), 2);
        assert_eq!(histogram.count(3), 1); // 5 clamped
        assert_eq!(histogram.count(-3), 1); // -9 clamped
        assert_eq!(histogram.count(7), 0);
        assert!((histogram.mean() - (0 + 0 + 1 - 2 + 5 - 9) as f64 / 6.0).abs() < 1e-12);
        let probabilities = histogram.probabilities();
        assert!(probabilities
            .iter()
            .any(|&(v, p)| v == 0 && (p - 1.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn histogram_rejects_inverted_range() {
        Histogram::new(3, -3);
    }

    #[test]
    fn rotor_vs_random_mean_difference_is_tiny_on_uniform_data() {
        // The Figure 5b observation: per-request access costs of Rotor-Push
        // and Random-Push differ by small amounts with mean close to zero.
        let tree = CompleteTree::with_levels(9).unwrap();
        let requests = uniform_requests(tree.num_nodes(), 20_000, 4);
        let initial = satn_tree::placement::random_occupancy(tree, &mut StdRng::seed_from_u64(8));
        let mut rotor = RotorPush::new(initial.clone());
        let mut random = RandomPush::with_seed(initial, 99);
        let differences = access_cost_differences(&mut rotor, &mut random, &requests).unwrap();
        let mut histogram = Histogram::new(-8, 8);
        histogram.record_all(differences.iter().copied());
        assert_eq!(histogram.total() as usize, requests.len());
        assert!(histogram.mean().abs() < 0.25, "mean {}", histogram.mean());
    }

    #[test]
    fn competitive_report_relates_costs_to_lower_bounds() {
        let tree = CompleteTree::with_levels(6).unwrap();
        let requests = uniform_requests(tree.num_nodes(), 3_000, 6);
        let mut rotor = RotorPush::new(Occupancy::identity(tree));
        let report = competitive_report(&mut rotor, tree.num_nodes(), &requests).unwrap();
        assert_eq!(report.requests, 3_000);
        assert_eq!(
            report.total_cost,
            report.access_cost + report.adjustment_cost
        );
        assert!(report.working_set_bound > 0.0);
        assert!(report.static_opt_cost > 0);
        assert!(report.mean_cost() > 1.0);
        assert!(report.ratio_to_working_set_bound().is_finite());
        assert!(report.ratio_to_static_opt().is_finite());
        assert_eq!(report.algorithm, "rotor-push");
    }

    #[test]
    fn static_oblivious_report_has_zero_adjustment() {
        let tree = CompleteTree::with_levels(5).unwrap();
        let requests = uniform_requests(tree.num_nodes(), 500, 9);
        let mut alg = StaticOblivious::new(Occupancy::identity(tree));
        let report = competitive_report(&mut alg, tree.num_nodes(), &requests).unwrap();
        assert_eq!(report.adjustment_cost, 0);
    }

    #[test]
    fn empty_sequences_produce_empty_reports() {
        let tree = CompleteTree::with_levels(4).unwrap();
        let mut alg = RotorPush::new(Occupancy::identity(tree));
        let report = competitive_report(&mut alg, tree.num_nodes(), &[]).unwrap();
        assert_eq!(report.total_cost, 0);
        assert_eq!(report.mean_cost(), 0.0);
        assert!(report.ratio_to_working_set_bound().is_infinite());
    }
}
