//! Windowed static-optimal ("best layout in hindsight") comparators.
//!
//! The paper's evaluation uses one global `Static-Opt` tree as the static
//! reference. On non-stationary workloads that reference is weak: a layout
//! that is optimal for the *whole* trace can be far from optimal inside every
//! individual phase. The helpers here compute, for each window of the trace,
//! the expected access cost of the best static layout *for that window* —
//! a stronger (still offline) comparator that the convergence experiments use
//! to judge how well the online trees track a moving demand distribution.

use crate::entropy::static_optimal_expected_cost;
use satn_core::SelfAdjustingTree;
use satn_tree::{ElementId, TreeError};

/// The per-window comparison of an online algorithm against the best static
/// layout chosen in hindsight for that window.
#[derive(Debug, Clone, PartialEq)]
pub struct HindsightWindow {
    /// Index of the first request of the window.
    pub start: usize,
    /// Number of requests in the window.
    pub length: usize,
    /// Mean total cost per request paid by the online algorithm.
    pub online_mean_cost: f64,
    /// Mean access cost per request of the best static layout for this
    /// window's frequencies.
    pub hindsight_mean_cost: f64,
}

/// The aggregate result of [`hindsight_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct HindsightReport {
    /// One entry per window, in order.
    pub windows: Vec<HindsightWindow>,
}

impl HindsightReport {
    /// Total online cost over all windows.
    pub fn online_total(&self) -> f64 {
        self.windows
            .iter()
            .map(|w| w.online_mean_cost * w.length as f64)
            .sum()
    }

    /// Total hindsight-static cost over all windows.
    pub fn hindsight_total(&self) -> f64 {
        self.windows
            .iter()
            .map(|w| w.hindsight_mean_cost * w.length as f64)
            .sum()
    }

    /// The ratio of the online cost to the windowed hindsight-optimal cost
    /// (≥ some constant < 1 is impossible only up to adjustment costs; the
    /// interesting question is how small the ratio stays).
    pub fn ratio(&self) -> f64 {
        let hindsight = self.hindsight_total();
        if hindsight <= 0.0 {
            return f64::INFINITY;
        }
        self.online_total() / hindsight
    }
}

/// The expected access cost per request of the best static layout for the
/// given requests (frequencies measured on exactly these requests).
pub fn static_hindsight_mean_cost(num_elements: u32, requests: &[ElementId]) -> f64 {
    if requests.is_empty() {
        return 0.0;
    }
    let mut frequencies = vec![0.0f64; num_elements as usize];
    for request in requests {
        if request.index() < num_elements {
            frequencies[request.usize()] += 1.0;
        }
    }
    static_optimal_expected_cost(&frequencies)
}

/// Serves `requests` on `algorithm` and compares each window of
/// `window_length` requests against the best static layout for that window.
///
/// # Errors
///
/// Propagates the first error returned by the algorithm.
///
/// # Panics
///
/// Panics if `window_length` is zero.
pub fn hindsight_report<A: SelfAdjustingTree + ?Sized>(
    algorithm: &mut A,
    requests: &[ElementId],
    window_length: usize,
) -> Result<HindsightReport, TreeError> {
    assert!(window_length > 0, "the window length must be positive");
    let num_elements = algorithm.occupancy().num_elements();
    let mut windows = Vec::new();
    let mut start = 0usize;
    while start < requests.len() {
        let end = (start + window_length).min(requests.len());
        let window = &requests[start..end];
        let summary = algorithm.serve_sequence(window)?;
        windows.push(HindsightWindow {
            start,
            length: window.len(),
            online_mean_cost: summary.mean_total(),
            hindsight_mean_cost: static_hindsight_mean_cost(num_elements, window),
        });
        start = end;
    }
    Ok(HindsightReport { windows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use satn_core::{RotorPush, StaticOblivious};
    use satn_tree::{CompleteTree, Occupancy};

    fn identity(levels: u32) -> Occupancy {
        Occupancy::identity(CompleteTree::with_levels(levels).unwrap())
    }

    fn ids(raw: &[u32]) -> Vec<ElementId> {
        raw.iter().map(|&i| ElementId::new(i)).collect()
    }

    #[test]
    fn hindsight_cost_of_a_constant_window_is_one() {
        let requests = ids(&[5; 100]);
        assert!((static_hindsight_mean_cost(15, &requests) - 1.0).abs() < 1e-12);
        assert_eq!(static_hindsight_mean_cost(15, &[]), 0.0);
    }

    #[test]
    fn report_covers_the_whole_trace_in_order() {
        let requests: Vec<ElementId> = (0..250u32).map(|i| ElementId::new(i % 31)).collect();
        let mut algorithm = RotorPush::new(identity(5));
        let report = hindsight_report(&mut algorithm, &requests, 100).unwrap();
        assert_eq!(report.windows.len(), 3);
        assert_eq!(report.windows[0].length, 100);
        assert_eq!(report.windows[2].length, 50);
        assert_eq!(report.windows[2].start, 200);
        let covered: usize = report.windows.iter().map(|w| w.length).sum();
        assert_eq!(covered, 250);
    }

    #[test]
    fn online_cost_never_beats_the_hindsight_static_layout_by_definition() {
        // The hindsight layout minimises the expected access cost, and the
        // online algorithm additionally pays adjustment costs; its per-window
        // cost can dip below the hindsight access cost only if the window is
        // so short that the online tree inherits a better layout from the
        // previous window — so over the whole trace the ratio stays >= ~1.
        let mut rotor = RotorPush::new(identity(8));
        let requests: Vec<ElementId> = (0..20_000u32)
            .map(|i| ElementId::new((i * i + i / 7) % 255))
            .collect();
        let report = hindsight_report(&mut rotor, &requests, 2_000).unwrap();
        assert!(report.ratio() >= 0.9, "ratio {}", report.ratio());
        assert!(report.online_total() > 0.0);
        assert!(report.hindsight_total() > 0.0);
    }

    #[test]
    fn self_adjustment_closes_most_of_the_gap_on_shifting_hot_sets() {
        // Two phases with disjoint hot sets: a single global static tree must
        // sacrifice one phase, the windowed hindsight bound does not, and the
        // online tree tracks the shift.
        let mut requests = Vec::new();
        for i in 0..10_000u32 {
            requests.push(ElementId::new(200 + (i % 5)));
        }
        for i in 0..10_000u32 {
            requests.push(ElementId::new(300 + (i % 5)));
        }
        let mut rotor = RotorPush::new(identity(9));
        let mut oblivious = StaticOblivious::new(identity(9));
        let rotor_report = hindsight_report(&mut rotor, &requests, 5_000).unwrap();
        let oblivious_report = hindsight_report(&mut oblivious, &requests, 5_000).unwrap();
        assert!(rotor_report.ratio() < oblivious_report.ratio());
        // The online tree stays within a small constant of the per-window
        // optimum on this highly local workload.
        assert!(rotor_report.ratio() < 4.0, "ratio {}", rotor_report.ratio());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_length_is_rejected() {
        let mut algorithm = RotorPush::new(identity(3));
        let _ = hindsight_report(&mut algorithm, &ids(&[0, 1]), 0);
    }
}
