//! Empirical verification of the amortized analyses (Theorems 7 and 11).
//!
//! The competitive proofs assign every element a *credit* based on its level
//! in the algorithm's tree, its level in the optimum's tree and (for
//! Rotor-Push) the flip-rank of its node, and show that per round the actual
//! cost plus the change of total credit is at most `12 · Opt`
//! (resp. `16 · Opt` in expectation). These auditors recompute the credits
//! after every round against a *static* optimum proxy and check the
//! inequality, turning the proof into an executable test.

use satn_core::{RandomPush, RotorPush, SelfAdjustingTree};
use satn_tree::{ElementId, Occupancy, TreeError};

/// The credit scaling factor `f = 4` of the Rotor-Push analysis.
pub const ROTOR_CREDIT_FACTOR: f64 = 4.0;
/// The credit scaling factor `f_R = 8` of the Random-Push analysis.
pub const RANDOM_CREDIT_FACTOR: f64 = 8.0;
/// The competitive ratio proven for Rotor-Push (Theorem 7).
pub const ROTOR_COMPETITIVE_RATIO: f64 = 12.0;
/// The competitive ratio proven for Random-Push (Theorem 11).
pub const RANDOM_COMPETITIVE_RATIO: f64 = 16.0;

/// The level-weight of an element (equation (1) of the paper):
/// `ℓ(e) − 2·ℓopt(e) − 1` when `ℓ(e) ≥ 2·ℓopt(e) + 2`, otherwise 0.
pub fn level_weight(alg_level: u32, opt_level: u32) -> f64 {
    if alg_level >= 2 * opt_level + 2 {
        f64::from(alg_level) - 2.0 * f64::from(opt_level) - 1.0
    } else {
        0.0
    }
}

/// The flip-rank-weight of an element (equation (2) of the paper):
/// `1 − frnk(e) / 2^{ℓ(e)}` when `ℓ(e) ≥ 2·ℓopt(e) + 1`, otherwise 0.
pub fn flip_rank_weight(alg_level: u32, opt_level: u32, flip_rank: u64) -> f64 {
    if alg_level > 2 * opt_level {
        1.0 - flip_rank as f64 / (1u64 << alg_level) as f64
    } else {
        0.0
    }
}

/// The per-round outcome of an amortized-cost audit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditRound {
    /// Actual cost paid by the algorithm in this round.
    pub cost: u64,
    /// Change of the total credit during the round.
    pub credit_delta: f64,
    /// The optimum proxy's cost for this round (its static access cost).
    pub opt_cost: u64,
    /// `cost + credit_delta − ratio · opt_cost`; non-positive when the
    /// theorem's inequality holds for the round.
    pub slack: f64,
}

/// Aggregated result of auditing a request sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Per-round results.
    pub rounds: Vec<AuditRound>,
    /// The largest (worst) per-round slack.
    pub max_slack: f64,
    /// Total algorithm cost over the sequence.
    pub total_cost: u64,
    /// Total optimum-proxy cost over the sequence.
    pub total_opt_cost: u64,
    /// Amortized-to-optimal ratio over the whole sequence:
    /// `(total cost + final credit − initial credit) / total opt cost`.
    pub amortized_ratio: f64,
}

impl AuditReport {
    /// Returns `true` if the per-round inequality held in every round (up to
    /// a tiny floating-point tolerance).
    pub fn holds_per_round(&self) -> bool {
        self.max_slack <= 1e-6
    }
}

/// Auditor for the Rotor-Push analysis (Theorem 7).
#[derive(Debug, Clone)]
pub struct RotorPushAuditor {
    opt: Occupancy,
}

impl RotorPushAuditor {
    /// Creates an auditor whose optimum proxy is the given *static*
    /// occupancy (typically the frequency-ordered Static-Opt placement).
    pub fn new(opt: Occupancy) -> Self {
        RotorPushAuditor { opt }
    }

    /// Total credit `Σ_e 4·(wLEV(e) + wFRNK(e))` of the algorithm state.
    pub fn total_credit(&self, algorithm: &RotorPush) -> f64 {
        let occupancy = algorithm.occupancy();
        let rotors = algorithm.rotor_state();
        occupancy
            .iter()
            .map(|(node, element)| {
                let alg_level = node.level();
                let opt_level = self.opt.level_of(element);
                let frnk = rotors.flip_rank(node);
                ROTOR_CREDIT_FACTOR
                    * (level_weight(alg_level, opt_level)
                        + flip_rank_weight(alg_level, opt_level, frnk))
            })
            .sum()
    }

    /// Runs `algorithm` on `requests`, checking the per-round amortized
    /// inequality `cost + Δcredit ≤ 12 · (ℓopt(e*) + 1)` after every round.
    ///
    /// # Errors
    ///
    /// Propagates serving errors (unknown elements).
    pub fn audit(
        &self,
        algorithm: &mut RotorPush,
        requests: &[ElementId],
    ) -> Result<AuditReport, TreeError> {
        let initial_credit = self.total_credit(algorithm);
        let mut credit_before = initial_credit;
        let mut rounds = Vec::with_capacity(requests.len());
        let mut max_slack = f64::NEG_INFINITY;
        let mut total_cost = 0u64;
        let mut total_opt = 0u64;
        for &request in requests {
            let opt_cost = self.opt.access_cost(request);
            let cost = algorithm.serve(request)?.total();
            let credit_after = self.total_credit(algorithm);
            let credit_delta = credit_after - credit_before;
            let slack = cost as f64 + credit_delta - ROTOR_COMPETITIVE_RATIO * opt_cost as f64;
            max_slack = max_slack.max(slack);
            rounds.push(AuditRound {
                cost,
                credit_delta,
                opt_cost,
                slack,
            });
            credit_before = credit_after;
            total_cost += cost;
            total_opt += opt_cost;
        }
        let amortized_ratio = if total_opt == 0 {
            0.0
        } else {
            (total_cost as f64 + credit_before - initial_credit) / total_opt as f64
        };
        Ok(AuditReport {
            rounds,
            max_slack: if max_slack.is_finite() {
                max_slack
            } else {
                0.0
            },
            total_cost,
            total_opt_cost: total_opt,
            amortized_ratio,
        })
    }
}

/// Auditor for the Random-Push analysis (Theorem 11). The guarantee is in
/// expectation, so only the aggregate ratio is meaningful; per-round slacks
/// are still reported for inspection.
#[derive(Debug, Clone)]
pub struct RandomPushAuditor {
    opt: Occupancy,
}

impl RandomPushAuditor {
    /// Creates an auditor with the given static optimum proxy.
    pub fn new(opt: Occupancy) -> Self {
        RandomPushAuditor { opt }
    }

    /// Total credit `Σ_e 8·wLEV(e)` of the algorithm state.
    pub fn total_credit<R: rand::Rng + 'static>(&self, algorithm: &RandomPush<R>) -> f64 {
        algorithm
            .occupancy()
            .iter()
            .map(|(node, element)| {
                RANDOM_CREDIT_FACTOR * level_weight(node.level(), self.opt.level_of(element))
            })
            .sum()
    }

    /// Runs the algorithm over `requests` and reports amortized costs against
    /// `16 · Opt`.
    ///
    /// # Errors
    ///
    /// Propagates serving errors (unknown elements).
    pub fn audit<R: rand::Rng + 'static>(
        &self,
        algorithm: &mut RandomPush<R>,
        requests: &[ElementId],
    ) -> Result<AuditReport, TreeError> {
        let initial_credit = self.total_credit(algorithm);
        let mut credit_before = initial_credit;
        let mut rounds = Vec::with_capacity(requests.len());
        let mut max_slack = f64::NEG_INFINITY;
        let mut total_cost = 0u64;
        let mut total_opt = 0u64;
        for &request in requests {
            let opt_cost = self.opt.access_cost(request);
            let cost = algorithm.serve(request)?.total();
            let credit_after = self.total_credit(algorithm);
            let credit_delta = credit_after - credit_before;
            let slack = cost as f64 + credit_delta - RANDOM_COMPETITIVE_RATIO * opt_cost as f64;
            max_slack = max_slack.max(slack);
            rounds.push(AuditRound {
                cost,
                credit_delta,
                opt_cost,
                slack,
            });
            credit_before = credit_after;
            total_cost += cost;
            total_opt += opt_cost;
        }
        let amortized_ratio = if total_opt == 0 {
            0.0
        } else {
            (total_cost as f64 + credit_before - initial_credit) / total_opt as f64
        };
        Ok(AuditReport {
            rounds,
            max_slack: if max_slack.is_finite() {
                max_slack
            } else {
                0.0
            },
            total_cost,
            total_opt_cost: total_opt,
            amortized_ratio,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use satn_tree::{placement, CompleteTree};

    fn opt_for_sequence(tree: CompleteTree, requests: &[ElementId]) -> Occupancy {
        let mut weights = vec![0.0; tree.num_nodes() as usize];
        for r in requests {
            weights[r.usize()] += 1.0;
        }
        placement::frequency_occupancy(tree, &weights)
    }

    fn random_requests(tree: CompleteTree, len: usize, seed: u64) -> Vec<ElementId> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| ElementId::new(rng.gen_range(0..tree.num_nodes())))
            .collect()
    }

    fn skewed_requests(tree: CompleteTree, len: usize, seed: u64) -> Vec<ElementId> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                let hot = rng.gen_bool(0.8);
                let range = if hot { 4 } else { tree.num_nodes() };
                ElementId::new(rng.gen_range(0..range))
            })
            .collect()
    }

    #[test]
    fn weights_match_the_paper_definitions() {
        assert_eq!(level_weight(5, 1), 2.0); // 5 >= 2*1+2 -> 5-2-1
        assert_eq!(level_weight(4, 1), 1.0);
        assert_eq!(level_weight(3, 1), 0.0); // 3 < 4
        assert_eq!(level_weight(0, 0), 0.0);
        assert!((flip_rank_weight(3, 1, 3) - (1.0 - 3.0 / 8.0)).abs() < 1e-12);
        assert_eq!(flip_rank_weight(2, 1, 0), 0.0); // 2 < 2*1+1
        assert_eq!(flip_rank_weight(1, 0, 1), 0.5);
    }

    #[test]
    fn identical_trees_have_zero_credit() {
        let tree = CompleteTree::with_levels(5).unwrap();
        let alg = RotorPush::new(Occupancy::identity(tree));
        let auditor = RotorPushAuditor::new(Occupancy::identity(tree));
        assert_eq!(auditor.total_credit(&alg), 0.0);
    }

    #[test]
    fn theorem7_inequality_holds_per_round_on_random_sequences() {
        let tree = CompleteTree::with_levels(6).unwrap();
        let requests = random_requests(tree, 2_000, 11);
        let opt = opt_for_sequence(tree, &requests);
        let mut alg = RotorPush::new(placement::random_occupancy(
            tree,
            &mut StdRng::seed_from_u64(1),
        ));
        let report = RotorPushAuditor::new(opt)
            .audit(&mut alg, &requests)
            .unwrap();
        assert!(
            report.holds_per_round(),
            "max slack {} must be non-positive",
            report.max_slack
        );
        assert!(report.amortized_ratio <= ROTOR_COMPETITIVE_RATIO + 1e-9);
    }

    #[test]
    fn theorem7_inequality_holds_on_skewed_sequences() {
        let tree = CompleteTree::with_levels(7).unwrap();
        let requests = skewed_requests(tree, 3_000, 5);
        let opt = opt_for_sequence(tree, &requests);
        let mut alg = RotorPush::new(Occupancy::identity(tree));
        let report = RotorPushAuditor::new(opt)
            .audit(&mut alg, &requests)
            .unwrap();
        assert!(report.holds_per_round(), "max slack {}", report.max_slack);
    }

    #[test]
    fn theorem11_ratio_holds_in_aggregate() {
        let tree = CompleteTree::with_levels(6).unwrap();
        let requests = skewed_requests(tree, 4_000, 23);
        let opt = opt_for_sequence(tree, &requests);
        let mut alg = RandomPush::with_seed(Occupancy::identity(tree), 3);
        let report = RandomPushAuditor::new(opt)
            .audit(&mut alg, &requests)
            .unwrap();
        assert!(
            report.amortized_ratio <= RANDOM_COMPETITIVE_RATIO + 1e-9,
            "ratio {}",
            report.amortized_ratio
        );
        assert_eq!(report.rounds.len(), requests.len());
        assert!(report.total_cost > 0);
        assert!(report.total_opt_cost > 0);
    }

    #[test]
    fn audit_report_round_bookkeeping_is_consistent() {
        let tree = CompleteTree::with_levels(4).unwrap();
        let requests = random_requests(tree, 50, 2);
        let opt = opt_for_sequence(tree, &requests);
        let mut alg = RotorPush::new(Occupancy::identity(tree));
        let report = RotorPushAuditor::new(opt)
            .audit(&mut alg, &requests)
            .unwrap();
        let cost_sum: u64 = report.rounds.iter().map(|r| r.cost).sum();
        let opt_sum: u64 = report.rounds.iter().map(|r| r.opt_cost).sum();
        assert_eq!(cost_sum, report.total_cost);
        assert_eq!(opt_sum, report.total_opt_cost);
        let worst = report
            .rounds
            .iter()
            .map(|r| r.slack)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((worst - report.max_slack).abs() < 1e-12);
    }
}
