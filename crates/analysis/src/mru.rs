//! The MRU (most-recently-used) reference tree of the paper's analysis.
//!
//! An MRU tree stores more recently accessed elements no deeper than less
//! recently accessed ones, which gives it the working-set property: the
//! access cost of an element is `O(log rank)`. Random-Push approximates an
//! MRU tree in expectation; Rotor-Push does not (Lemma 8). This module
//! provides the ideal MRU cost for comparison and a checker that decides
//! whether an occupancy is in MRU order.

use satn_core::RecencyTracker;
use satn_tree::{ElementId, Occupancy};

/// The access cost an ideal MRU tree would pay for an element of a given
/// working-set rank: the element with rank `r` can be kept at level
/// `⌊log2 r⌋`, so the cost is `⌊log2 r⌋ + 1`.
pub fn mru_access_cost(rank: u64) -> u64 {
    debug_assert!(rank >= 1, "ranks are positive");
    64 - rank.leading_zeros() as u64
}

/// Checks whether `occupancy` is in MRU order with respect to the recency
/// information in `recency`: no element may be strictly deeper than a less
/// recently used element. Elements that were never accessed are ignored.
pub fn is_mru_ordered(occupancy: &Occupancy, recency: &RecencyTracker) -> bool {
    // For every level, the most recent access time of the level below must
    // not exceed ... precisely: for any accessed elements a, b with
    // last(a) > last(b), level(a) <= level(b). Equivalently, for every pair
    // of levels l < l', the *minimum* recency at level l (among accessed
    // elements) must be at least the *maximum* recency at level l'.
    let tree = occupancy.tree();
    let mut min_per_level: Vec<Option<u64>> = vec![None; tree.num_levels() as usize];
    let mut max_per_level: Vec<Option<u64>> = vec![None; tree.num_levels() as usize];
    for (node, element) in occupancy.iter() {
        let last = recency.last_access(element);
        if last == 0 {
            continue;
        }
        let level = node.level() as usize;
        min_per_level[level] = Some(min_per_level[level].map_or(last, |m: u64| m.min(last)));
        max_per_level[level] = Some(max_per_level[level].map_or(last, |m: u64| m.max(last)));
    }
    let mut deepest_max_so_far: Option<u64> = None;
    for level in (0..tree.num_levels() as usize).rev() {
        if let Some(max_below) = deepest_max_so_far {
            if let Some(min_here) = min_per_level[level] {
                if min_here < max_below {
                    return false;
                }
            }
        }
        if let Some(max_here) = max_per_level[level] {
            deepest_max_so_far = Some(deepest_max_so_far.map_or(max_here, |m| m.max(max_here)));
        }
    }
    true
}

/// Total cost an ideal MRU tree (Strict-MRU with free reorganisation) would
/// pay for a request sequence: `Σ_t (⌊log2 rank_t⌋ + 1)`.
pub fn mru_reference_cost(num_elements: u32, requests: &[ElementId]) -> u64 {
    crate::working_set::working_set_ranks(num_elements, requests)
        .into_iter()
        .map(mru_access_cost)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use satn_core::{MaxPush, SelfAdjustingTree};
    use satn_tree::{CompleteTree, Occupancy};

    #[test]
    fn mru_access_cost_is_floor_log_plus_one() {
        assert_eq!(mru_access_cost(1), 1);
        assert_eq!(mru_access_cost(2), 2);
        assert_eq!(mru_access_cost(3), 2);
        assert_eq!(mru_access_cost(4), 3);
        assert_eq!(mru_access_cost(7), 3);
        assert_eq!(mru_access_cost(8), 4);
        assert_eq!(mru_access_cost(1023), 10);
        assert_eq!(mru_access_cost(1024), 11);
    }

    #[test]
    fn identity_with_no_accesses_is_trivially_mru() {
        let tree = CompleteTree::with_levels(4).unwrap();
        let occupancy = Occupancy::identity(tree);
        let recency = RecencyTracker::new(tree.num_nodes());
        assert!(is_mru_ordered(&occupancy, &recency));
    }

    #[test]
    fn max_push_maintains_mru_order_but_a_counterexample_fails() {
        let tree = CompleteTree::with_levels(5).unwrap();
        let mut alg = MaxPush::new(Occupancy::identity(tree));
        let requests: Vec<ElementId> = [20u32, 7, 29, 3, 11, 7, 23]
            .iter()
            .map(|&i| ElementId::new(i))
            .collect();
        for &request in &requests {
            alg.serve(request).unwrap();
        }
        assert!(is_mru_ordered(alg.occupancy(), alg.recency()));

        // Build a broken configuration: most recent element forced to a leaf.
        let mut recency = RecencyTracker::new(tree.num_nodes());
        recency.touch(ElementId::new(0)); // element 0 sits at the root (identity)
        recency.touch(ElementId::new(30)); // element 30 sits at a leaf but is most recent
        let occupancy = Occupancy::identity(tree);
        assert!(!is_mru_ordered(&occupancy, &recency));
    }

    #[test]
    fn reference_cost_tracks_working_set_sizes() {
        // Round-robin over 4 elements: after warm-up each access has rank 4,
        // so the ideal MRU cost is 3 per request.
        let requests: Vec<ElementId> = (0..40u32).map(|i| ElementId::new(i % 4)).collect();
        let cost = mru_reference_cost(8, &requests);
        // warm-up: ranks 1,2,3,4 -> costs 1,2,2,3 = 8; then 36 requests of rank 4 -> 3 each.
        assert_eq!(cost, 8 + 36 * 3);
    }
}
