//! The Lemma 8 adversary: Rotor-Push lacks the working-set property.
//!
//! The construction of Lemma 8 restricts requests to the set `S` consisting
//! of the root and the two leftmost nodes of every level (|S| = 2x − 1 for a
//! tree of x levels) and always requests the element stored at the deepest
//! node of `S` that currently lies on the rotor global path. All movement
//! stays inside `S`, so every working set has size at most `2x − 1`, yet the
//! access cost periodically reaches `x` — linear in the working-set size
//! instead of logarithmic.

use crate::working_set::WorkingSetTracker;
use satn_core::{RotorPush, SelfAdjustingTree};
use satn_tree::{CompleteTree, ElementId, NodeId, Occupancy, TreeError};

/// The adaptive adversary of Lemma 8.
#[derive(Debug, Clone)]
pub struct Lemma8Adversary {
    /// The restricted node set `S`, grouped for fast lookup.
    in_s: Vec<bool>,
    max_level: u32,
}

impl Lemma8Adversary {
    /// Creates the adversary for the given tree: `S` is the root plus the two
    /// leftmost nodes of every deeper level.
    pub fn new(tree: CompleteTree) -> Self {
        let mut in_s = vec![false; tree.num_nodes() as usize];
        in_s[NodeId::ROOT.usize()] = true;
        for level in 1..tree.num_levels() {
            for offset in 0..2u32 {
                in_s[NodeId::from_level_offset(level, offset).usize()] = true;
            }
        }
        Lemma8Adversary {
            in_s,
            max_level: tree.max_level(),
        }
    }

    /// Number of nodes in the restricted set `S` (= 2x − 1 for x levels).
    pub fn restricted_set_size(&self) -> usize {
        self.in_s.iter().filter(|&&b| b).count()
    }

    /// Returns `true` if `node` belongs to `S`.
    pub fn contains(&self, node: NodeId) -> bool {
        self.in_s[node.usize()]
    }

    /// Chooses the next request against the current Rotor-Push state: the
    /// element stored at the deepest global-path node that belongs to `S`.
    pub fn next_request(&self, algorithm: &RotorPush) -> ElementId {
        let rotors = algorithm.rotor_state();
        let mut chosen = NodeId::ROOT;
        for level in (0..=self.max_level).rev() {
            let candidate = rotors.global_path_node(level);
            if self.contains(candidate) {
                chosen = candidate;
                break;
            }
        }
        algorithm.occupancy().element_at(chosen)
    }
}

/// Result of driving Rotor-Push with the Lemma 8 adversary.
#[derive(Debug, Clone, PartialEq)]
pub struct Lemma8Report {
    /// Number of requests issued.
    pub requests: usize,
    /// Size of the restricted node set `S` (an upper bound on every working
    /// set).
    pub restricted_set_size: usize,
    /// The highest access cost observed.
    pub max_access_cost: u64,
    /// The working-set rank of the request that achieved the highest access
    /// cost.
    pub rank_at_max: u64,
    /// The largest working-set rank observed over the whole run.
    pub max_rank: u64,
    /// Access cost and working-set rank of every request (for plotting).
    pub trace: Vec<(u64, u64)>,
}

impl Lemma8Report {
    /// The headline figure of Lemma 8: the ratio between the worst access
    /// cost and the logarithm of the working-set bound at that moment. For an
    /// algorithm with the working-set property this stays O(1); for
    /// Rotor-Push under this adversary it grows linearly with the tree depth.
    pub fn violation_factor(&self) -> f64 {
        self.max_access_cost as f64 / (self.rank_at_max.max(2) as f64).log2().max(1.0)
    }
}

/// Runs the Lemma 8 adversary against a fresh Rotor-Push instance on a tree
/// with `levels` levels for `rounds` requests.
///
/// # Errors
///
/// Propagates tree-construction errors (invalid `levels`).
pub fn run_lemma8(levels: u32, rounds: usize) -> Result<Lemma8Report, TreeError> {
    let tree = CompleteTree::with_levels(levels)?;
    let mut algorithm = RotorPush::new(Occupancy::identity(tree));
    let adversary = Lemma8Adversary::new(tree);
    let mut tracker = WorkingSetTracker::new(tree.num_nodes(), rounds);
    let mut trace = Vec::with_capacity(rounds);
    let mut max_access_cost = 0u64;
    let mut rank_at_max = 0u64;
    let mut max_rank = 0u64;
    for _ in 0..rounds {
        let request = adversary.next_request(&algorithm);
        let rank = tracker.access(request);
        let cost = algorithm.serve(request)?;
        if cost.access > max_access_cost {
            max_access_cost = cost.access;
            rank_at_max = rank;
        }
        max_rank = max_rank.max(rank);
        trace.push((cost.access, rank));
    }
    Ok(Lemma8Report {
        requests: rounds,
        restricted_set_size: adversary.restricted_set_size(),
        max_access_cost,
        rank_at_max,
        max_rank,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restricted_set_has_size_2x_minus_1() {
        for levels in 2..=8u32 {
            let tree = CompleteTree::with_levels(levels).unwrap();
            let adversary = Lemma8Adversary::new(tree);
            assert_eq!(adversary.restricted_set_size(), (2 * levels - 1) as usize);
            assert!(adversary.contains(NodeId::ROOT));
            assert!(adversary.contains(NodeId::from_level_offset(levels - 1, 0)));
            assert!(adversary.contains(NodeId::from_level_offset(levels - 1, 1)));
            if levels >= 3 {
                assert!(!adversary.contains(NodeId::from_level_offset(levels - 1, 2)));
            }
        }
    }

    #[test]
    fn requests_stay_inside_the_restricted_element_set() {
        // With the identity initial placement the elements stored at S never
        // leave S (the push-down cycle only touches S nodes), so the number
        // of distinct requested elements is at most |S|.
        let report = run_lemma8(6, 400).unwrap();
        assert!(report.max_rank <= report.restricted_set_size as u64);
    }

    #[test]
    fn access_cost_reaches_the_full_depth() {
        // Lemma 8: the adversary forces an access of cost x (the number of
        // levels) even though the working set never exceeds 2x - 1.
        for levels in [5u32, 7, 9] {
            let report = run_lemma8(levels, 4_000).unwrap();
            assert_eq!(
                report.max_access_cost, levels as u64,
                "levels {levels}: {report:?}"
            );
            assert!(report.max_rank <= (2 * levels - 1) as u64);
        }
    }

    #[test]
    fn violation_factor_grows_with_depth() {
        let small = run_lemma8(5, 2_000).unwrap().violation_factor();
        let large = run_lemma8(10, 8_000).unwrap().violation_factor();
        assert!(
            large > small,
            "violation factor should grow with depth: {small} vs {large}"
        );
    }

    #[test]
    fn report_trace_is_complete() {
        let report = run_lemma8(4, 100).unwrap();
        assert_eq!(report.trace.len(), 100);
        assert_eq!(report.requests, 100);
        let observed_max = report.trace.iter().map(|&(c, _)| c).max().unwrap();
        assert_eq!(observed_max, report.max_access_cost);
    }
}
