//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small, dependency-free subset of the rand 0.8 API — exactly the surface
//! the `satn` crates use: a seedable deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64), the [`Rng`] extension trait with
//! `gen`, `gen_range` and `gen_bool`, and [`seq::SliceRandom::shuffle`].
//!
//! Output streams are deterministic per seed but intentionally *not*
//! bit-compatible with the real `rand` crate; nothing in this repository
//! depends on rand's exact streams, only on seedability and uniformity.

#![forbid(unsafe_code)]

/// The core of every random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its "standard" distribution
    /// (uniform over the type for integers and `bool`, uniform in `[0, 1)`
    /// for floats).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A random number generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the same stream as rand's `StdRng` (ChaCha12); seedable,
    /// portable, and of high statistical quality, which is all the
    /// experiments require.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors
            // (and used by rand itself for seed_from_u64).
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions: the `Standard` distribution and uniform range sampling.
pub mod distributions {
    use super::{unit_f64, RngCore};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution: uniform over the whole type for
    /// integers and `bool`, uniform `[0, 1)` for floats.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
        }
    }

    /// Uniform sampling from ranges.
    pub mod uniform {
        use super::super::{unit_f64, RngCore};
        use core::ops::{Range, RangeInclusive};

        /// A range that can be sampled uniformly.
        pub trait SampleRange<T> {
            /// Draws one sample from the range.
            ///
            /// # Panics
            /// Panics if the range is empty.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Maps 64 random bits onto `[0, span)` with a widening multiply
        /// (Lemire's multiply-shift; bias is < 2^-64 per draw, irrelevant
        /// for the experiment scales used here).
        fn bounded(bits: u64, span: u64) -> u64 {
            ((u128::from(bits) * u128::from(span)) >> 64) as u64
        }

        macro_rules! impl_sample_range_int {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as u64).wrapping_sub(self.start as u64);
                        self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "gen_range: empty range");
                        let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                        if span == 0 {
                            // Full u64 domain: every draw is in range.
                            return rng.next_u64() as $t;
                        }
                        start.wrapping_add(bounded(rng.next_u64(), span) as $t)
                    }
                }
            )*};
        }
        impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64())
            }
        }

        impl SampleRange<f64> for RangeInclusive<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                start + (end - start) * unit_f64(rng.next_u64())
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait for slices: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &count in &counts {
            assert!((9_000..11_000).contains(&count), "counts = {counts:?}");
        }
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }
}
