//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small generate-and-check harness exposing the proptest API surface the
//! `satn` crates use: the [`proptest!`] macro (including
//! `#![proptest_config(...)]`), range / tuple / `prop_map` / `any::<T>()`
//! strategies, [`collection::vec`], and the `prop_assert*` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports its
//! deterministic case index and seed instead of a minimised input), and the
//! generation streams differ. Properties are pure universally-quantified
//! assertions here, so neither difference affects what the tests verify.

#![forbid(unsafe_code)]

/// Test-case driving: configuration and the runner behind [`proptest!`].
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How many cases each property runs; mirrors `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the whole workspace's
            // property suites fast in CI while still exercising plenty of
            // shapes per property.
            Config { cases: 64 }
        }
    }

    /// Runs a property `config.cases` times with per-case deterministic seeds.
    #[derive(Debug)]
    pub struct TestRunner {
        config: Config,
        name: &'static str,
    }

    impl TestRunner {
        /// Creates a runner for the named property.
        pub fn new(config: Config, name: &'static str) -> Self {
            TestRunner { config, name }
        }

        /// Runs the property; panics with the case index and seed on failure.
        pub fn run<F>(&mut self, test: &mut F)
        where
            F: FnMut(&mut StdRng) -> Result<(), String>,
        {
            for case in 0..self.config.cases {
                let seed = fnv1a(self.name) ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut rng = StdRng::seed_from_u64(seed);
                if let Err(message) = test(&mut rng) {
                    panic!(
                        "proptest property `{}` failed at case {case} (seed {seed:#018x}): {message}",
                        self.name
                    );
                }
            }
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in s.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an associated type.
    ///
    /// Unlike real proptest there is no shrinking: a strategy is just a
    /// deterministic function of the per-case RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { strategy: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.strategy.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` and the `Arbitrary` trait behind it.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Generates an arbitrary value of the type.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { min: len, max: len }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "collection::vec: empty size range");
            SizeRange {
                min: range.start,
                max: range.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            assert!(
                range.start() <= range.end(),
                "collection::vec: empty size range"
            );
            SizeRange {
                min: *range.start(),
                max: *range.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`](vec()).
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests.
///
/// Supports the subset of real proptest syntax used in this workspace:
/// an optional leading `#![proptest_config(expr)]`, then `#[test]` functions
/// whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner =
                $crate::test_runner::TestRunner::new($config, stringify!($name));
            runner.run(&mut |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __proptest_rng);)+
                $body
                Ok(())
            });
        }
    )*};
}

/// `assert!` that fails the current proptest case instead of panicking
/// directly, so the harness can report the case index and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: `{left:?}`\n right: `{right:?}`",
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: `{left:?}`\n right: `{right:?}`: {}",
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// `assert_ne!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `left != right`\n  both: `{left:?}`",
            ));
        }
    }};
}
