//! The paper's Q5 experiment on a text corpus: slide a 3-letter window over a
//! book, treat every distinct triple as an element, and compare the
//! self-adjusting tree networks on the resulting request stream.
//!
//! By default a synthetic English-like book is generated; pass a path to a
//! real text file (e.g. a Canterbury-corpus book) to reproduce the paper's
//! setting exactly:
//!
//! ```text
//! cargo run --release --example corpus_text [-- /path/to/book.txt]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use satn::compress::complexity_point;
use satn::workloads::corpus;
use satn::{fit_tree_levels, AlgorithmKind, CompleteTree, SelfAdjustingTree};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path)?;
            corpus::from_text(path, &text)
        }
        None => {
            let mut rng = StdRng::seed_from_u64(5);
            let text = corpus::MarkovTextGenerator::new().text(40_000, &mut rng);
            corpus::from_text("synthetic-book", &text)
        }
    };

    println!(
        "dataset {:?}: {} requests over {} distinct letter triples",
        workload.name(),
        workload.len(),
        workload.num_elements()
    );

    // Where does the dataset sit on the complexity map (Figure 6)?
    let trace: Vec<u32> = workload.requests().iter().map(|e| e.index()).collect();
    let mut rng = StdRng::seed_from_u64(1);
    let point = complexity_point(&trace, &mut rng).clamped(1.5);
    println!(
        "complexity map position: temporal {:.2}, non-temporal {:.2}",
        point.temporal, point.non_temporal
    );

    // Figure 7: per-request cost of every algorithm on this dataset.
    let levels = fit_tree_levels(workload.num_elements());
    let tree = CompleteTree::with_levels(levels)?;
    let mut rng = StdRng::seed_from_u64(2);
    let initial = satn::tree::placement::random_occupancy(tree, &mut rng);
    println!(
        "\n{:<18} {:>12} {:>12} {:>12}",
        "algorithm", "access/req", "adjust/req", "total/req"
    );
    for kind in AlgorithmKind::EVALUATED {
        let mut algorithm = kind.instantiate(initial.clone(), 3, workload.requests())?;
        let summary = algorithm.serve_sequence(workload.requests())?;
        println!(
            "{:<18} {:>12.3} {:>12.3} {:>12.3}",
            kind.name(),
            summary.mean_access(),
            summary.mean_adjustment(),
            summary.mean_total()
        );
    }
    Ok(())
}
