//! A compact version of the paper's locality experiments (Q2/Q3) that runs in
//! a few seconds: sweep the temporal-locality parameter `p` and the Zipf
//! skewness `a` on a 1023-node tree and print the mean cost per request of
//! every algorithm.
//!
//! Run with `cargo run --example locality_sweep --release`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use satn::tree::placement;
use satn::workloads::synthetic;
use satn::{AlgorithmKind, CompleteTree, Workload};

fn measure(kind: AlgorithmKind, tree: CompleteTree, workload: &Workload) -> f64 {
    let mut rng = StdRng::seed_from_u64(11);
    let initial = placement::random_occupancy(tree, &mut rng);
    let mut algorithm = kind
        .instantiate(initial, 11, workload.requests())
        .expect("workload fits the tree");
    let summary = algorithm
        .serve_sequence(workload.requests())
        .expect("workload fits the tree");
    summary.mean_total()
}

fn print_sweep(title: &str, tree: CompleteTree, workloads: &[(String, Workload)]) {
    println!("{title}");
    print!("{:<14}", "workload");
    for kind in AlgorithmKind::EVALUATED {
        print!(" {:>16}", kind.name());
    }
    println!();
    for (label, workload) in workloads {
        print!("{label:<14}");
        for kind in AlgorithmKind::EVALUATED {
            print!(" {:>16.3}", measure(kind, tree, workload));
        }
        println!();
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tree = CompleteTree::with_nodes(1023)?;
    let requests = 100_000;

    let temporal: Vec<(String, Workload)> = [0.0, 0.3, 0.6, 0.9]
        .iter()
        .map(|&p| {
            let mut rng = StdRng::seed_from_u64(2022);
            (
                format!("p = {p}"),
                synthetic::temporal(tree.num_nodes(), requests, p, &mut rng),
            )
        })
        .collect();
    print_sweep(
        "Q2 (temporal locality): mean cost per request",
        tree,
        &temporal,
    );

    let spatial: Vec<(String, Workload)> = [1.001, 1.6, 2.2]
        .iter()
        .map(|&a| {
            let mut rng = StdRng::seed_from_u64(2022);
            (
                format!("a = {a}"),
                synthetic::zipf(tree.num_nodes(), requests, a, &mut rng),
            )
        })
        .collect();
    print_sweep(
        "Q3 (spatial locality): mean cost per request",
        tree,
        &spatial,
    );

    println!(
        "Self-adjustment pays off once locality is high enough (large p or a), matching\n\
         Figures 3 and 4 of the paper; run the full harness with\n\
         `cargo run -p satn-bench --release --bin experiments` for the complete figures."
    );
    Ok(())
}
