//! Quickstart: build a self-adjusting tree network, serve requests, inspect
//! costs and the rotor state.
//!
//! Run with `cargo run --release --example quickstart`.

use satn::{CompleteTree, ElementId, NodeId, Occupancy, RotorPush, SelfAdjustingTree};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example: a complete binary tree with 15 nodes
    // (4 levels); element i starts at node i.
    let tree = CompleteTree::with_nodes(15)?;
    let mut network = RotorPush::new(Occupancy::identity(tree));

    println!("Figure 1 example: request the element at node 5 (level 2)");
    let cost = network.serve(ElementId::new(5))?;
    println!("  access cost     : {}", cost.access);
    println!("  adjustment cost : {}", cost.adjustment);
    println!(
        "  element 5 now at: {} (level {})",
        network.occupancy().node_of(ElementId::new(5)),
        network.occupancy().level_of(ElementId::new(5)),
    );
    println!(
        "  global path now starts with {} -> {}",
        NodeId::ROOT,
        network.rotor_state().global_path_node(1)
    );

    // Serve a skewed sequence on a larger tree and watch the network adapt.
    let tree = CompleteTree::with_nodes(1023)?;
    let mut network = RotorPush::new(Occupancy::identity(tree));
    let hot: Vec<ElementId> = (1000..1010).map(ElementId::new).collect();
    let mut summary = satn::CostSummary::new();
    for round in 0..10_000usize {
        let element = hot[round % hot.len()];
        summary.record(network.serve(element)?);
    }
    println!("\nServing 10,000 requests over a 10-element hot set (1023-node tree):");
    println!("  mean access cost     : {:.3}", summary.mean_access());
    println!("  mean adjustment cost : {:.3}", summary.mean_adjustment());
    let deepest_hot_level = hot
        .iter()
        .map(|&element| network.occupancy().level_of(element))
        .max()
        .unwrap_or(0);
    println!(
        "  hot elements now live in levels 0..={} of a {}-level tree",
        deepest_hot_level,
        tree.num_levels()
    );
    Ok(())
}
