//! Multi-source datacenter composition: every host runs its own self-adjusting
//! ego-tree and the network serves skewed (hotspot) traffic.
//!
//! This is the application sketched in the paper's introduction: single-source
//! tree networks combined into a reconfigurable, demand-aware topology. The
//! example compares the per-request route cost and the physical degree of the
//! composition for several per-source algorithms.
//!
//! Run with `cargo run --example multi_source_network --release`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use satn::network::traffic;
use satn::{AlgorithmKind, Host, SelfAdjustingNetwork};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_hosts = 64;
    let num_requests = 50_000;
    let mut rng = StdRng::seed_from_u64(2022);
    let demand = traffic::hotspot(num_hosts, num_requests, 8, 0.9, &mut rng);
    println!(
        "hotspot traffic: {} hosts, {} requests, {} distinct pairs, entropy {:.2} bits\n",
        num_hosts,
        demand.len(),
        demand.distinct_pairs(),
        demand.empirical_entropy()
    );

    println!(
        "{:<18} {:>16} {:>12} {:>12} {:>11} {:>12}",
        "algorithm", "mean route cost", "mean access", "mean adjust", "max degree", "mean degree"
    );
    for kind in [
        AlgorithmKind::RotorPush,
        AlgorithmKind::RandomPush,
        AlgorithmKind::MoveHalf,
        AlgorithmKind::MaxPush,
        AlgorithmKind::StaticOblivious,
    ] {
        let mut network = SelfAdjustingNetwork::new(num_hosts, kind, 7)?;
        let summary = network.serve_trace(demand.pairs())?;
        println!(
            "{:<18} {:>16.3} {:>12.3} {:>12.3} {:>11} {:>12.2}",
            kind.name(),
            summary.mean_total(),
            summary.mean_access(),
            summary.mean_adjustment(),
            network.max_degree(),
            network.mean_degree()
        );
    }

    // Show how the heaviest pair's route shrinks under Rotor-Push.
    let mut network = SelfAdjustingNetwork::new(num_hosts, AlgorithmKind::RotorPush, 7)?;
    let (top_pair, top_count) = demand.top_pairs(1)[0];
    println!(
        "\nheaviest pair {top_pair} ({top_count} requests): route length before = {}",
        network.route_length(top_pair.source, top_pair.destination)?
    );
    network.serve_trace(demand.pairs())?;
    println!(
        "after serving the trace the route length is {} (the destination sits at the ego-tree root)",
        network.route_length(top_pair.source, top_pair.destination)?
    );
    println!(
        "host {} now has physical degree {}",
        Host::new(0),
        network.physical_degree(Host::new(0))
    );
    Ok(())
}
