//! Turning the paper's theory into executable checks:
//!
//! * audit the amortized analysis of Theorem 7 — per round, Rotor-Push's cost
//!   plus the change of the credit function stays below 12× the optimum
//!   proxy's access cost;
//! * run the Lemma 8 adversary, which forces Rotor-Push's access cost to grow
//!   linearly in the working-set size (showing it lacks the working-set
//!   property), while Random-Push on the very same trace stays logarithmic.
//!
//! Run with `cargo run --release --example competitive_audit`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use satn::workloads::synthetic;
use satn::{run_lemma8, CompleteTree, RotorPush, RotorPushAuditor, SelfAdjustingTree, StaticOpt};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Theorem 7 audit -------------------------------------------------
    let nodes: u32 = 1_023;
    let tree = CompleteTree::with_nodes(u64::from(nodes))?;
    let mut rng = StdRng::seed_from_u64(9);
    let workload = synthetic::zipf(nodes, 20_000, 1.6, &mut rng);

    let opt = StaticOpt::from_sequence(tree, workload.requests())?;
    let auditor = RotorPushAuditor::new(opt.occupancy().clone());
    let mut rotor = RotorPush::new(satn::tree::placement::random_occupancy(tree, &mut rng));
    let report = auditor.audit(&mut rotor, workload.requests())?;

    println!("Theorem 7 audit (Rotor-Push vs a static optimum proxy):");
    println!("  rounds audited          : {}", report.rounds.len());
    println!(
        "  per-round inequality    : {}",
        if report.holds_per_round() {
            "holds"
        } else {
            "VIOLATED"
        }
    );
    println!("  worst per-round slack   : {:.3}", report.max_slack);
    println!(
        "  amortized cost ratio    : {:.3} (proven bound: 12)",
        report.amortized_ratio
    );

    // --- Lemma 8 adversary ------------------------------------------------
    println!("\nLemma 8 adversary (no working-set property for Rotor-Push):");
    println!("  levels  |S|  max access cost  max working-set rank");
    for levels in [5u32, 7, 9, 11] {
        let report = run_lemma8(levels, 4_000usize << (levels - 5))?;
        println!(
            "  {:>6}  {:>3}  {:>15}  {:>20}",
            levels, report.restricted_set_size, report.max_access_cost, report.max_rank
        );
    }
    println!("  -> the access cost equals the tree depth although the working set");
    println!("     never exceeds 2·levels − 1: linear, not logarithmic, in the rank.");
    Ok(())
}
