//! A reconfigurable-datacenter scenario: a single source (e.g. an optical
//! circuit switch port) communicates with racks whose popularity is skewed
//! and bursty. The example compares every algorithm of the paper on the same
//! traffic trace — the single-source tree network setting that motivates the
//! paper.
//!
//! Run with `cargo run --release --example datacenter_reconfiguration`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use satn::workloads::synthetic;
use satn::{AlgorithmKind, CompleteTree, SelfAdjustingTree};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 4095 racks reachable through a 12-level tree; 200k flow arrivals whose
    // destinations are Zipf-distributed (a few hot racks) with bursty repeats.
    let nodes: u32 = 4_095;
    let tree = CompleteTree::with_nodes(u64::from(nodes))?;
    let mut rng = StdRng::seed_from_u64(42);
    let trace = synthetic::combined(nodes, 200_000, 1.6, 0.6, &mut rng);

    println!(
        "traffic trace: {} requests, empirical entropy {:.2} bits, repeat fraction {:.2}",
        trace.len(),
        trace.empirical_entropy(),
        trace.repeat_fraction()
    );
    println!(
        "{:<18} {:>12} {:>12} {:>12}",
        "algorithm", "access/req", "adjust/req", "total/req"
    );

    // All algorithms start from the same random initial placement, as in the
    // paper's methodology.
    let initial = satn::tree::placement::random_occupancy(tree, &mut rng);
    for kind in AlgorithmKind::EVALUATED {
        let mut algorithm = kind.instantiate(initial.clone(), 7, trace.requests())?;
        let summary = algorithm.serve_sequence(trace.requests())?;
        println!(
            "{:<18} {:>12.3} {:>12.3} {:>12.3}",
            kind.name(),
            summary.mean_access(),
            summary.mean_adjustment(),
            summary.mean_total()
        );
    }
    println!("\nSelf-adjusting trees pay adjustment cost but cut the access cost of hot racks;");
    println!("Rotor-Push matches Random-Push while being fully deterministic.");
    Ok(())
}
