//! How closely does the deterministic rotor walk imitate a random walk?
//!
//! The paper derandomizes Random-Push by replacing its random leaf choice
//! with rotor pointers. This example quantifies the "deterministic random
//! walk" property behind that idea on two levels:
//!
//! 1. the level-targeted walk used by the algorithms (dispatching chips from
//!    the root to a fixed level of a complete binary tree), and
//! 2. a general-graph rotor-router compared against a genuine random walk.
//!
//! Run with `cargo run --example rotor_walk_discrepancy --release`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use satn::rotor::graph::{random_walk_visits, visit_discrepancy, RotorGraph};
use satn::rotor::{max_discrepancy, RandomWalk, RotorWalk};
use satn::CompleteTree;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("1) chip dispatching to the leaf level of a complete binary tree\n");
    println!(
        "{:>7} {:>10} {:>24} {:>24}",
        "levels", "chips", "rotor max discrepancy", "random max discrepancy"
    );
    for levels in [4u32, 6, 8, 10] {
        let tree = CompleteTree::with_levels(levels)?;
        let chips = 50_000u64;
        let mut rotor = RotorWalk::new(tree, tree.max_level());
        let rotor_counts = rotor.visit_counts(chips);
        let mut random = RandomWalk::new(tree, tree.max_level(), StdRng::seed_from_u64(1));
        let random_counts = random.visit_counts(chips);
        println!(
            "{levels:>7} {chips:>10} {:>24.4} {:>24.4}",
            max_discrepancy(&rotor_counts),
            max_discrepancy(&random_counts)
        );
    }
    println!(
        "\nThe rotor walk never deviates by more than one chip per leaf — the property that\n\
         makes Rotor-Push imitate Random-Push so closely in the paper's experiments.\n"
    );

    println!("2) rotor-router vs. random walk on the tree-with-return graph\n");
    println!(
        "{:>7} {:>10} {:>22}",
        "levels", "steps", "visit-rate discrepancy"
    );
    for levels in [5u32, 7, 9] {
        let steps = 200_000u64;
        let mut rotor_graph = RotorGraph::complete_binary_tree(levels);
        let reference = rotor_graph.clone();
        let rotor_visits = rotor_graph.walk(0, steps);
        let mut rng = StdRng::seed_from_u64(7);
        let random_visits = random_walk_visits(&reference, 0, steps, &mut rng);
        println!(
            "{levels:>7} {steps:>10} {:>22.5}",
            visit_discrepancy(&rotor_visits, &random_visits)
        );
    }
    println!(
        "\nBoth walks converge to the same visit frequencies; the rotor walk is simply the\n\
         deterministic, bounded-discrepancy version of the random walk (cf. Section 1.3)."
    );
    Ok(())
}
