//! Regression test for the rotor-walk visit discrepancy: on complete trees
//! of 3–10 levels, the per-node visit counts of the deterministic
//! [`RotorWalk`] stay within a constant per node of the averaged
//! [`RandomWalk`] visits — the Cooper–Doerr–Friedrich–Spencer property
//! (*Deterministic Random Walks on Regular Trees*) that makes the
//! derandomization of Random-Push work.

use rand::rngs::StdRng;
use rand::SeedableRng;
use satn::rotor::{max_discrepancy, visit_discrepancy, RandomWalk, RotorWalk};
use satn::tree::CompleteTree;

const RANDOM_AVERAGING_RUNS: u64 = 16;

/// Per-node visit counts of `runs` independent random walks, averaged by
/// keeping the counts summed and scaling the rotor counts up to match: the
/// comparison happens on equal totals so [`visit_discrepancy`]'s
/// normalisation is meaningful.
fn averaged_random_counts(levels: u32, chips: u64, runs: u64, seed: u64) -> Vec<u64> {
    let tree = CompleteTree::with_levels(levels).unwrap();
    let slots = 1usize << (levels - 1);
    let mut summed = vec![0u64; slots];
    for run in 0..runs {
        let mut walk = RandomWalk::new(tree, levels - 1, StdRng::seed_from_u64(seed ^ run));
        for (slot, count) in walk.visit_counts(chips).into_iter().enumerate() {
            summed[slot] += count;
        }
    }
    summed
}

#[test]
fn rotor_visits_stay_within_a_constant_of_the_averaged_random_walk() {
    for levels in 3u32..=10 {
        let target_level = levels - 1;
        let slots = 1u64 << target_level;
        // Enough chips that every slot is visited many times, plus a
        // non-multiple remainder so rounding is exercised.
        let chips = slots * 40 + 7;

        let tree = CompleteTree::with_levels(levels).unwrap();
        let mut rotor = RotorWalk::new(tree, target_level);
        let rotor_counts = rotor.visit_counts(chips);

        // The rotor walk on its own is balanced to within one visit per node
        // of the uniform share — the paper's key structural property.
        assert!(
            max_discrepancy(&rotor_counts) <= 1.0 + 1e-9,
            "levels {levels}: rotor self-discrepancy {}",
            max_discrepancy(&rotor_counts)
        );

        // Against the averaged random walk: scale the rotor counts by the
        // number of averaging runs so both vectors have the same total. The
        // per-node gap then decomposes into the rotor's constant rounding
        // (at most 1 visit per node, scaled by the averaging runs) plus the
        // residual sampling noise of the finite random-walk average; eight
        // standard deviations of that noise cover every slot with margin.
        let random_counts = averaged_random_counts(
            levels,
            chips,
            RANDOM_AVERAGING_RUNS,
            0xD15C + u64::from(levels),
        );
        let scaled_rotor: Vec<u64> = rotor_counts
            .iter()
            .map(|&c| c * RANDOM_AVERAGING_RUNS)
            .collect();
        let noise_sigma = ((RANDOM_AVERAGING_RUNS * chips) as f64 / slots as f64).sqrt();
        let per_node_bound = RANDOM_AVERAGING_RUNS as f64 + 8.0 * noise_sigma;
        let total = (RANDOM_AVERAGING_RUNS * chips) as f64;
        let discrepancy = visit_discrepancy(&scaled_rotor, &random_counts);
        assert!(
            discrepancy * total <= per_node_bound,
            "levels {levels}: max per-node gap {} exceeds the constant-per-node bound {per_node_bound}",
            discrepancy * total
        );
    }
}

#[test]
fn rotor_walk_never_loses_to_the_random_walk_on_balance() {
    for levels in 3u32..=10 {
        let tree = CompleteTree::with_levels(levels).unwrap();
        let target_level = levels - 1;
        let chips = (1u64 << target_level) * 25 + 3;
        let mut rotor = RotorWalk::new(tree, target_level);
        let mut random = RandomWalk::new(
            tree,
            target_level,
            StdRng::seed_from_u64(99 + u64::from(levels)),
        );
        assert!(
            max_discrepancy(&rotor.visit_counts(chips))
                <= max_discrepancy(&random.visit_counts(chips)) + 1e-9,
            "levels {levels}"
        );
    }
}
