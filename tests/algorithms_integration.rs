//! Cross-crate integration tests: workloads from `satn-workloads` served by
//! every algorithm of `satn-core`, with the qualitative relationships the
//! paper reports.

use rand::rngs::StdRng;
use rand::SeedableRng;
use satn::workloads::synthetic;
use satn::{AlgorithmKind, CompleteTree, ElementId, Occupancy, SelfAdjustingTree};

fn mean_total(kind: AlgorithmKind, initial: &Occupancy, requests: &[ElementId]) -> f64 {
    let mut algorithm = kind
        .instantiate(initial.clone(), 99, requests)
        .expect("workload fits the tree");
    let summary = algorithm
        .serve_sequence(requests)
        .expect("workload fits the tree");
    summary.mean_total()
}

#[test]
fn every_algorithm_serves_a_mixed_workload_and_keeps_a_valid_tree() {
    let tree = CompleteTree::with_nodes(1023).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let workload = synthetic::combined(1023, 20_000, 1.3, 0.5, &mut rng);
    let initial = satn::tree::placement::random_occupancy(tree, &mut rng);
    for kind in AlgorithmKind::EVALUATED {
        let mut algorithm = kind
            .instantiate(initial.clone(), 5, workload.requests())
            .unwrap();
        let summary = algorithm.serve_sequence(workload.requests()).unwrap();
        assert_eq!(summary.requests() as usize, workload.len());
        assert!(algorithm.occupancy().is_consistent(), "{}", kind);
        assert!(summary.mean_access() >= 1.0, "{}", kind);
    }
}

#[test]
fn self_adjusting_algorithms_beat_the_oblivious_tree_under_high_temporal_locality() {
    let tree = CompleteTree::with_nodes(2047).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let workload = synthetic::temporal(2047, 40_000, 0.9, &mut rng);
    let initial = satn::tree::placement::random_occupancy(tree, &mut rng);
    let oblivious = mean_total(
        AlgorithmKind::StaticOblivious,
        &initial,
        workload.requests(),
    );
    for kind in [AlgorithmKind::RotorPush, AlgorithmKind::RandomPush] {
        let cost = mean_total(kind, &initial, workload.requests());
        assert!(
            cost < oblivious,
            "{kind} should beat static-oblivious at p=0.9: {cost} vs {oblivious}"
        );
    }
}

#[test]
fn static_opt_has_the_best_access_cost_under_skew() {
    // The paper's Q3 finding: Static-Opt wins on pure access cost in all
    // spatial-locality scenarios (self-adjusting algorithms additionally pay
    // adjustment).
    let tree = CompleteTree::with_nodes(2047).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let workload = synthetic::zipf(2047, 40_000, 1.9, &mut rng);
    let initial = satn::tree::placement::random_occupancy(tree, &mut rng);

    let mut static_opt = AlgorithmKind::StaticOpt
        .instantiate(initial.clone(), 1, workload.requests())
        .unwrap();
    let opt_access = static_opt
        .serve_sequence(workload.requests())
        .unwrap()
        .mean_access();
    for kind in AlgorithmKind::SELF_ADJUSTING {
        let mut algorithm = kind
            .instantiate(initial.clone(), 1, workload.requests())
            .unwrap();
        let access = algorithm
            .serve_sequence(workload.requests())
            .unwrap()
            .mean_access();
        assert!(
            opt_access <= access + 0.25,
            "{kind}: static-opt access {opt_access} should not be clearly worse than {access}"
        );
    }
}

#[test]
fn rotor_and_random_push_have_nearly_identical_mean_cost() {
    // The central empirical observation (Q4): the deterministic rotor walk
    // imitates the random walk so well that the mean costs almost coincide.
    let tree = CompleteTree::with_nodes(4095).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let workload = synthetic::uniform(4095, 50_000, &mut rng);
    let initial = satn::tree::placement::random_occupancy(tree, &mut rng);
    let rotor = mean_total(AlgorithmKind::RotorPush, &initial, workload.requests());
    let random = mean_total(AlgorithmKind::RandomPush, &initial, workload.requests());
    let relative_gap = (rotor - random).abs() / random;
    assert!(
        relative_gap < 0.02,
        "rotor {rotor} and random {random} should differ by <2% (gap {relative_gap})"
    );
}

#[test]
fn max_push_pays_far_more_adjustment_than_the_push_algorithms() {
    let tree = CompleteTree::with_nodes(1023).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let workload = synthetic::zipf(1023, 20_000, 1.3, &mut rng);
    let initial = satn::tree::placement::random_occupancy(tree, &mut rng);

    let adjustment = |kind: AlgorithmKind| {
        let mut algorithm = kind
            .instantiate(initial.clone(), 1, workload.requests())
            .unwrap();
        algorithm
            .serve_sequence(workload.requests())
            .unwrap()
            .mean_adjustment()
    };
    let rotor = adjustment(AlgorithmKind::RotorPush);
    let max_push = adjustment(AlgorithmKind::MaxPush);
    assert!(
        max_push > 2.0 * rotor,
        "max-push adjustment {max_push} should dwarf rotor-push {rotor}"
    );
}

#[test]
fn identical_seeds_reproduce_identical_experiments_end_to_end() {
    let tree = CompleteTree::with_nodes(511).unwrap();
    let run = || {
        let mut rng = StdRng::seed_from_u64(77);
        let workload = synthetic::combined(511, 5_000, 1.6, 0.75, &mut rng);
        let initial = satn::tree::placement::random_occupancy(tree, &mut rng);
        AlgorithmKind::EVALUATED
            .iter()
            .map(|kind| {
                let mut algorithm = kind
                    .instantiate(initial.clone(), 13, workload.requests())
                    .unwrap();
                algorithm
                    .serve_sequence(workload.requests())
                    .unwrap()
                    .total()
                    .total()
            })
            .collect::<Vec<u64>>()
    };
    assert_eq!(run(), run());
}
