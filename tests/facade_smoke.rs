//! Workspace smoke test: every advertised facade re-export resolves, the
//! crate-root aliases are the same types as the member-crate originals, and a
//! minimal end-to-end serve works through the facade alone.

use satn::{
    access_cost_differences, competitive_report, fit_tree_levels, run_lemma8, working_set_bound,
    AlgorithmKind, CompleteTree, CostSummary, Direction, ElementId, Histogram, Host, HostPair,
    MaxPush, MoveHalf, MoveToFront, NodeId, Occupancy, RandomPush, RandomPushAuditor, RotorPush,
    RotorPushAuditor, RotorState, RotorWalk, SelfAdjustingNetwork, SelfAdjustingTree, ServeCost,
    StaticOblivious, StaticOpt, TreeError, WorkingSetTracker, Workload,
};

/// The crate-root aliases must be the member-crate types, not lookalikes.
#[test]
fn root_reexports_are_the_member_crate_types() {
    fn same_type<T>(_: fn() -> T, _: fn() -> T) {}

    same_type(
        || -> CompleteTree { unreachable!() },
        || -> satn::tree::CompleteTree { unreachable!() },
    );
    same_type(
        || -> RotorState { unreachable!() },
        || -> satn::rotor::RotorState { unreachable!() },
    );
    same_type(
        || -> AlgorithmKind { unreachable!() },
        || -> satn::core::AlgorithmKind { unreachable!() },
    );
    same_type(
        || -> Workload { unreachable!() },
        || -> satn::workloads::Workload { unreachable!() },
    );
    same_type(
        || -> Histogram { unreachable!() },
        || -> satn::analysis::Histogram { unreachable!() },
    );
    same_type(
        || -> HostPair { unreachable!() },
        || -> satn::network::HostPair { unreachable!() },
    );
    same_type(
        || -> RotorWalk { unreachable!() },
        || -> satn::rotor::RotorWalk { unreachable!() },
    );
}

#[test]
fn facade_quickstart_serves_through_every_reexported_algorithm() {
    let tree = CompleteTree::with_levels(5).expect("5-level tree");
    let requests: Vec<ElementId> = (0..20).map(|i| ElementId::new(i % 7)).collect();

    let mut algorithms: Vec<Box<dyn SelfAdjustingTree>> = vec![
        Box::new(RotorPush::new(Occupancy::identity(tree))),
        Box::new(RandomPush::with_seed(Occupancy::identity(tree), 7)),
        Box::new(MoveHalf::new(Occupancy::identity(tree))),
        Box::new(MaxPush::new(Occupancy::identity(tree))),
        Box::new(MoveToFront::new(Occupancy::identity(tree))),
        Box::new(StaticOblivious::new(Occupancy::identity(tree))),
        Box::new(StaticOpt::from_sequence(tree, &requests).expect("static-opt")),
    ];

    for algorithm in &mut algorithms {
        let summary: CostSummary = algorithm
            .serve_sequence(&requests)
            .expect("serving a tiny trace succeeds");
        assert_eq!(summary.requests(), requests.len() as u64);
        assert!(algorithm.occupancy().is_consistent());
    }
}

#[test]
fn facade_analysis_and_network_entry_points_run() {
    let tree = CompleteTree::with_levels(4).expect("4-level tree");
    let num_elements = tree.num_nodes();
    let requests: Vec<ElementId> = (0..30).map(|i| ElementId::new((i * 3) % 11)).collect();

    // Analysis toolkit through the facade.
    assert!(working_set_bound(num_elements, &requests) > 0.0);
    let tracker = WorkingSetTracker::new(num_elements, requests.len());
    assert_eq!(tracker.requests(), 0);
    let mut rotor = RotorPush::new(Occupancy::identity(tree));
    let mut random = RandomPush::with_seed(Occupancy::identity(tree), 3);
    let differences =
        access_cost_differences(&mut rotor, &mut random, &requests).expect("cost differences");
    assert_eq!(differences.len(), requests.len());
    let mut histogram = Histogram::new(-16, 16);
    histogram.record_all(differences.iter().copied());
    assert_eq!(histogram.total() as usize, requests.len());
    let mut fresh = RotorPush::new(Occupancy::identity(tree));
    let report =
        competitive_report(&mut fresh, num_elements, &requests).expect("competitive report");
    assert!(report.total_cost > 0);
    let lemma8 = run_lemma8(4, 3).expect("lemma 8 adversary");
    assert!(lemma8.violation_factor() > 0.0);
    let _ = RotorPushAuditor::new(Occupancy::identity(tree));
    let _ = RandomPushAuditor::new(Occupancy::identity(tree));

    // Network layer through the facade.
    let mut network =
        SelfAdjustingNetwork::new(8, AlgorithmKind::RotorPush, 5).expect("8-host network");
    let pairs = [
        HostPair::new(Host::new(0), Host::new(3)),
        HostPair::new(Host::new(2), Host::new(7)),
        HostPair::new(Host::new(0), Host::new(3)),
    ];
    let summary = network.serve_trace(&pairs).expect("serving host pairs");
    assert_eq!(summary.requests(), pairs.len() as u64);

    // Misc helpers re-exported at the root.
    assert_eq!(fit_tree_levels(7), 3);
    assert_eq!(NodeId::ROOT.level(), 0);
    assert!(matches!(Direction::Left, Direction::Left));
    assert_eq!(ServeCost::ZERO.total(), 0);
    let _: fn(TreeError) = |_| {};
}
