//! Integration tests turning the paper's competitive analyses into
//! executable checks on realistic workloads.

use rand::rngs::StdRng;
use rand::SeedableRng;
use satn::workloads::synthetic;
use satn::{
    CompleteTree, RandomPush, RandomPushAuditor, RotorPush, RotorPushAuditor, SelfAdjustingTree,
    StaticOpt,
};

#[test]
fn theorem7_per_round_inequality_holds_on_combined_locality_workloads() {
    let nodes = 1_023u32;
    let tree = CompleteTree::with_nodes(u64::from(nodes)).unwrap();
    for (seed, a, p) in [(1u64, 1.001, 0.0), (2, 1.6, 0.5), (3, 2.2, 0.9)] {
        let mut rng = StdRng::seed_from_u64(seed);
        let workload = synthetic::combined(nodes, 10_000, a, p, &mut rng);
        let opt = StaticOpt::from_sequence(tree, workload.requests()).unwrap();
        let mut rotor = RotorPush::new(satn::tree::placement::random_occupancy(tree, &mut rng));
        let report = RotorPushAuditor::new(opt.occupancy().clone())
            .audit(&mut rotor, workload.requests())
            .unwrap();
        assert!(
            report.holds_per_round(),
            "a={a} p={p}: max slack {}",
            report.max_slack
        );
        assert!(report.amortized_ratio <= 12.0 + 1e-9);
    }
}

#[test]
fn theorem11_aggregate_ratio_holds_for_random_push() {
    let nodes = 1_023u32;
    let tree = CompleteTree::with_nodes(u64::from(nodes)).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let workload = synthetic::zipf(nodes, 15_000, 1.3, &mut rng);
    let opt = StaticOpt::from_sequence(tree, workload.requests()).unwrap();
    let mut random = RandomPush::with_seed(
        satn::tree::placement::random_occupancy(tree, &mut rng),
        1234,
    );
    let report = RandomPushAuditor::new(opt.occupancy().clone())
        .audit(&mut random, workload.requests())
        .unwrap();
    assert!(
        report.amortized_ratio <= 16.0,
        "amortized ratio {} exceeds the proven bound",
        report.amortized_ratio
    );
}

#[test]
fn measured_cost_stays_within_the_proven_factor_of_the_working_set_bound() {
    // The working-set bound is a lower bound on OPT (up to a constant), so a
    // 12-competitive algorithm must stay within a constant factor of it.
    let nodes = 2_047u32;
    let tree = CompleteTree::with_nodes(u64::from(nodes)).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let workload = synthetic::temporal(nodes, 30_000, 0.75, &mut rng);
    let mut rotor = RotorPush::new(satn::tree::placement::random_occupancy(tree, &mut rng));
    let report = satn::competitive_report(&mut rotor, nodes, workload.requests()).unwrap();
    assert!(report.working_set_bound > 0.0);
    // Generous constant: cost / WS-bound stays bounded (empirically ~2-6).
    assert!(
        report.ratio_to_working_set_bound() < 30.0,
        "ratio {}",
        report.ratio_to_working_set_bound()
    );
    assert!(report.ratio_to_static_opt() < 12.0 + 1.0);
}
