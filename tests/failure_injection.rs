//! Failure injection: the substrate must reject inconsistent states and
//! rule-violating operations instead of silently corrupting the simulation.

use satn::tree::{FreeSwapSession, MarkedRound, TreeError};
use satn::{CompleteTree, ElementId, NodeId, Occupancy, RotorPush, SelfAdjustingTree};

#[test]
fn invalid_tree_sizes_are_rejected() {
    for nodes in [0u64, 2, 4, 6, 100, 1 << 40] {
        assert!(matches!(
            CompleteTree::with_nodes(nodes),
            Err(TreeError::InvalidSize { .. })
        ));
    }
    assert!(CompleteTree::with_levels(0).is_err());
    assert!(CompleteTree::with_levels(40).is_err());
    assert!(CompleteTree::with_nodes(7).is_ok());
}

#[test]
fn non_bijective_placements_are_rejected() {
    let tree = CompleteTree::with_levels(3).unwrap();
    // Element 0 appears twice, element 6 never.
    let placement: Vec<ElementId> = [0u32, 1, 2, 3, 4, 5, 0]
        .iter()
        .map(|&i| ElementId::new(i))
        .collect();
    assert!(matches!(
        Occupancy::from_placement(tree, placement),
        Err(TreeError::NotABijection { .. })
    ));
    // Too short.
    assert!(Occupancy::from_placement(tree, vec![ElementId::new(0)]).is_err());
    // Out-of-range element.
    let placement: Vec<ElementId> = (0..6).chain([99]).map(ElementId::new).collect();
    assert!(Occupancy::from_placement(tree, placement).is_err());
}

#[test]
fn the_marking_rule_blocks_swaps_away_from_the_access_path() {
    let tree = CompleteTree::with_levels(4).unwrap();
    let mut occupancy = Occupancy::identity(tree);
    // Access element 7 (leftmost leaf); the right subtree is unmarked.
    let mut round = MarkedRound::access(&mut occupancy, ElementId::new(7)).unwrap();
    let err = round.swap(NodeId::new(13), NodeId::new(6)).unwrap_err();
    assert!(matches!(err, TreeError::UnmarkedSwap { .. }));
    // Swapping two nodes that are not parent/child is rejected even on the path.
    let err = round.swap(NodeId::new(7), NodeId::new(1)).unwrap_err();
    assert!(matches!(err, TreeError::NotAdjacent { .. }));
    // A legal swap on the access path still works afterwards.
    round.swap(NodeId::new(7), NodeId::new(3)).unwrap();
    let cost = round.finish();
    assert_eq!(cost.access, 4);
    assert_eq!(cost.adjustment, 1);
    assert!(occupancy.is_consistent());
}

#[test]
fn rejected_operations_leave_the_occupancy_untouched() {
    let tree = CompleteTree::with_levels(4).unwrap();
    let mut occupancy = Occupancy::identity(tree);
    let snapshot = occupancy.clone();

    // Free-swap sessions still validate adjacency and node ranges.
    let mut session = FreeSwapSession::new(&mut occupancy);
    assert!(session.swap(NodeId::new(0), NodeId::new(5)).is_err());
    assert!(session.swap(NodeId::new(3), NodeId::new(99)).is_err());
    assert_eq!(session.finish(), 0);
    assert_eq!(occupancy, snapshot);

    // Direct occupancy swaps validate too.
    assert!(occupancy
        .swap_nodes(NodeId::new(2), NodeId::new(3))
        .is_err());
    assert!(occupancy
        .swap_elements(ElementId::new(0), ElementId::new(9))
        .is_err());
    assert_eq!(occupancy, snapshot);
}

#[test]
fn algorithms_reject_requests_outside_the_element_set_without_state_damage() {
    let tree = CompleteTree::with_levels(5).unwrap();
    let mut algorithm = RotorPush::new(Occupancy::identity(tree));
    algorithm.serve(ElementId::new(17)).unwrap();
    let occupancy_before = algorithm.occupancy().clone();
    let rotors_before = algorithm.rotor_state().clone();
    let err = algorithm.serve(ElementId::new(31)).unwrap_err();
    assert!(matches!(err, TreeError::ElementOutOfRange { .. }));
    assert_eq!(algorithm.occupancy(), &occupancy_before);
    assert_eq!(algorithm.rotor_state(), &rotors_before);
}

#[test]
fn corrupted_rotor_pointers_are_rejected_at_the_api_boundary() {
    use satn::rotor::RotorState;
    let tree = CompleteTree::with_levels(4).unwrap();
    let mut rotors = RotorState::new(tree);
    // Nodes outside the tree are rejected; the state stays usable afterwards.
    assert!(rotors.toggle(NodeId::new(99)).is_err());
    assert!(rotors
        .set_pointer(NodeId::new(15), satn::Direction::Right)
        .is_err());
    assert_eq!(rotors.global_path_node(0), NodeId::ROOT);
    // Pointers of leaves exist but are never followed: toggling one does not
    // change any global-path node.
    let path_before = rotors.global_path();
    rotors.toggle(NodeId::new(14)).unwrap();
    assert_eq!(rotors.global_path(), path_before);
}

#[test]
fn workload_and_tree_size_mismatches_surface_as_errors() {
    let tree = CompleteTree::with_levels(3).unwrap();
    let mut algorithm = RotorPush::new(Occupancy::identity(tree));
    let requests: Vec<ElementId> = (0..20u32).map(ElementId::new).collect();
    let err = algorithm.serve_sequence(&requests).unwrap_err();
    assert!(matches!(err, TreeError::ElementOutOfRange { .. }));
}

#[test]
fn trace_parser_reports_corrupt_files_instead_of_panicking() {
    use satn::workloads::{read_trace, TraceError};
    let corrupt = [
        "",                                 // empty
        "no header line\n0\n1\n",           // missing header
        "# name=x num_elements=8\n1\n-3\n", // negative index
        "# name=x num_elements=8\n1\n12\n", // out of range
        "# name=x num_elements=abc\n1\n",   // malformed universe size
    ];
    for text in corrupt {
        let result = read_trace(text.as_bytes());
        assert!(result.is_err(), "{text:?} should not parse");
    }
    // Errors are printable and typed.
    match read_trace("# name=x num_elements=8\n12\n".as_bytes()) {
        Err(TraceError::RequestOutOfRange { element, .. }) => assert_eq!(element, 12),
        other => panic!("unexpected result {other:?}"),
    }
}
