//! Integration test for the Section 1.1 lower-bound example: round-robin
//! requests along one root-to-leaf path make the naive Move-To-Front
//! generalisation pay Θ(depth) per request, while the constant-competitive
//! algorithms and the static optimum stay near O(log depth).

use satn::workloads::synthetic;
use satn::{AlgorithmKind, CompleteTree, ElementId, Occupancy, SelfAdjustingTree};

fn mean_total(kind: AlgorithmKind, tree: CompleteTree, requests: &[ElementId]) -> f64 {
    let mut algorithm = kind
        .instantiate(Occupancy::identity(tree), 3, requests)
        .unwrap();
    algorithm.serve_sequence(requests).unwrap().mean_total()
}

#[test]
fn move_to_front_pays_theta_depth_while_competitive_algorithms_do_not() {
    let levels = 11u32;
    let tree = CompleteTree::with_levels(levels).unwrap();
    let leaf = tree.num_nodes() - 1;
    let workload = synthetic::round_robin_path(tree.num_nodes(), leaf, 3_000);

    let mtf = mean_total(AlgorithmKind::MoveToFront, tree, workload.requests());
    let rotor = mean_total(AlgorithmKind::RotorPush, tree, workload.requests());
    let static_opt = mean_total(AlgorithmKind::StaticOpt, tree, workload.requests());

    // MTF keeps paying close to the full depth.
    assert!(
        mtf > 0.7 * f64::from(levels),
        "move-to-front mean cost {mtf} should be near the depth {levels}"
    );
    // The static optimum packs the path elements into the top levels:
    // roughly log2(levels) + 1 access cost.
    assert!(
        static_opt < f64::from(levels) / 2.0,
        "static-opt {static_opt} should be far below the depth"
    );
    // Rotor-Push is constant-competitive, so it also stays well below MTF.
    assert!(
        rotor < 0.75 * mtf,
        "rotor-push {rotor} should clearly beat move-to-front {mtf}"
    );
}

#[test]
fn the_gap_grows_with_the_tree_depth() {
    let ratio_for = |levels: u32| {
        let tree = CompleteTree::with_levels(levels).unwrap();
        let leaf = tree.num_nodes() - 1;
        let workload = synthetic::round_robin_path(tree.num_nodes(), leaf, 2_000);
        let mtf = mean_total(AlgorithmKind::MoveToFront, tree, workload.requests());
        let opt = mean_total(AlgorithmKind::StaticOpt, tree, workload.requests());
        mtf / opt
    };
    let shallow = ratio_for(6);
    let deep = ratio_for(12);
    assert!(
        deep > shallow,
        "the MTF/OPT ratio should grow with depth: {shallow} vs {deep}"
    );
}
