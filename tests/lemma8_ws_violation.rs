//! Integration test for Lemma 8: under the constructed adversary Rotor-Push's
//! access cost grows linearly in the working-set size, while Random-Push and
//! Max-Push stay close to logarithmic on the very same request trace.

use satn::analysis::{working_set_ranks, Lemma8Adversary};
use satn::{
    run_lemma8, CompleteTree, ElementId, MaxPush, Occupancy, RandomPush, RotorPush,
    SelfAdjustingTree,
};

/// Replays a fixed trace and returns the worst ratio access_cost / (log2(rank)+1),
/// taken over *repeat* accesses only. The first access of each element has an
/// ill-defined working set (its rank is 1 regardless of the algorithm), so
/// including it would charge every algorithm the initial depth of that element
/// and mask the Lemma 8 effect, which is about re-accesses with small working
/// sets.
fn worst_ws_factor<A: SelfAdjustingTree>(
    algorithm: &mut A,
    trace: &[ElementId],
    ranks: &[u64],
) -> f64 {
    let mut seen = std::collections::HashSet::new();
    trace
        .iter()
        .zip(ranks)
        .map(|(&request, &rank)| {
            let cost = algorithm.serve(request).unwrap();
            if seen.insert(request) {
                0.0
            } else {
                cost.access as f64 / ((rank.max(2) as f64).log2() + 1.0)
            }
        })
        .fold(0.0, f64::max)
}

#[test]
fn rotor_push_access_cost_reaches_the_tree_depth_with_tiny_working_sets() {
    for levels in [6u32, 8, 10] {
        let report = run_lemma8(levels, 2_000usize << (levels - 5)).unwrap();
        assert_eq!(report.max_access_cost, u64::from(levels));
        assert!(report.max_rank <= u64::from(2 * levels - 1));
    }
}

#[test]
fn the_same_trace_is_harmless_for_random_push_and_max_push() {
    let levels = 10u32;
    let tree = CompleteTree::with_levels(levels).unwrap();

    // Record the adversarial trace produced against Rotor-Push.
    let adversary = Lemma8Adversary::new(tree);
    let mut rotor = RotorPush::new(Occupancy::identity(tree));
    let rounds = 2_000usize << (levels - 5);
    let mut trace = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let request = adversary.next_request(&rotor);
        rotor.serve(request).unwrap();
        trace.push(request);
    }
    let ranks = working_set_ranks(tree.num_nodes(), &trace);

    // Replay it from scratch on all three algorithms.
    let mut rotor_replay = RotorPush::new(Occupancy::identity(tree));
    let mut random = RandomPush::with_seed(Occupancy::identity(tree), 11);
    let mut max_push = MaxPush::new(Occupancy::identity(tree));
    let rotor_factor = worst_ws_factor(&mut rotor_replay, &trace, &ranks);
    let random_factor = worst_ws_factor(&mut random, &trace, &ranks);
    let max_factor = worst_ws_factor(&mut max_push, &trace, &ranks);

    // Rotor-Push violates the working-set property (cost ~ depth / log(ws));
    // the other two stay below it on this trace: Max-Push keeps accessed
    // elements in MRU order and Random-Push spreads the push-down paths, so
    // neither is driven to the full depth by this adversary.
    assert!(
        rotor_factor > random_factor,
        "rotor {rotor_factor} vs random {random_factor}"
    );
    assert!(
        rotor_factor > max_factor,
        "rotor {rotor_factor} vs max-push {max_factor}"
    );
}
