//! Integration test of the multi-source composition through the `satn`
//! facade: ego-trees per source, skewed traffic, cost and degree accounting.

use rand::rngs::StdRng;
use rand::SeedableRng;
use satn::network::{traffic, NetworkError};
use satn::{AlgorithmKind, Host, SelfAdjustingNetwork};

#[test]
fn self_adjusting_composition_beats_the_oblivious_one_on_skewed_traffic() {
    let num_hosts = 48;
    let mut rng = StdRng::seed_from_u64(3);
    let demand = traffic::hotspot(num_hosts, 30_000, 6, 0.9, &mut rng);

    let mut rotor = SelfAdjustingNetwork::new(num_hosts, AlgorithmKind::RotorPush, 1).unwrap();
    let mut random = SelfAdjustingNetwork::new(num_hosts, AlgorithmKind::RandomPush, 1).unwrap();
    let mut oblivious =
        SelfAdjustingNetwork::new(num_hosts, AlgorithmKind::StaticOblivious, 1).unwrap();

    let rotor_cost = rotor.serve_trace(demand.pairs()).unwrap().mean_total();
    let random_cost = random.serve_trace(demand.pairs()).unwrap().mean_total();
    let oblivious_cost = oblivious.serve_trace(demand.pairs()).unwrap().mean_total();

    assert!(
        rotor_cost < oblivious_cost,
        "{rotor_cost} vs {oblivious_cost}"
    );
    assert!(
        random_cost < oblivious_cost,
        "{random_cost} vs {oblivious_cost}"
    );
    // Rotor-Push and Random-Push stay close to each other, as in the paper's
    // single-source experiments.
    assert!((rotor_cost - random_cost).abs() < 0.5 * rotor_cost);
}

#[test]
fn hot_destinations_end_up_near_the_roots_of_their_sources_ego_trees() {
    let num_hosts = 32;
    let mut rng = StdRng::seed_from_u64(9);
    let demand = traffic::hotspot(num_hosts, 20_000, 3, 0.95, &mut rng);
    let mut network = SelfAdjustingNetwork::new(num_hosts, AlgorithmKind::RotorPush, 4).unwrap();
    network.serve_trace(demand.pairs()).unwrap();
    for (pair, count) in network_top_pairs(&demand, 3) {
        if count < 100 {
            continue;
        }
        let route = network.route_length(pair.source, pair.destination).unwrap();
        assert!(
            route <= 3,
            "heavy pair {pair} ({count} requests) still routes over {route} hops"
        );
    }
}

fn network_top_pairs(demand: &satn::network::Traffic, k: usize) -> Vec<(satn::HostPair, u64)> {
    demand.top_pairs(k)
}

#[test]
fn per_source_costs_sum_to_the_total_across_algorithms() {
    let num_hosts = 24;
    let mut rng = StdRng::seed_from_u64(5);
    let demand = traffic::uniform(num_hosts, 5_000, &mut rng);
    for kind in [
        AlgorithmKind::RotorPush,
        AlgorithmKind::MoveHalf,
        AlgorithmKind::MaxPush,
    ] {
        let mut network = SelfAdjustingNetwork::new(num_hosts, kind, 2).unwrap();
        network.serve_trace(demand.pairs()).unwrap();
        let per_source: u64 = (0..num_hosts)
            .map(|h| network.cost_of_source(Host::new(h)).total().total())
            .sum();
        assert_eq!(per_source, network.total_cost().total().total(), "{kind}");
        assert_eq!(network.total_cost().requests(), 5_000);
    }
}

#[test]
fn physical_degrees_stay_within_the_analytic_bound_while_adjusting() {
    let num_hosts = 20u32;
    let mut rng = StdRng::seed_from_u64(8);
    let demand = traffic::zipf_destinations(num_hosts, 8_000, 1.8, &mut rng);
    let mut network = SelfAdjustingNetwork::new(num_hosts, AlgorithmKind::RotorPush, 0).unwrap();
    // Every host appears in n−1 foreign trees with ≤ 3 tree links each plus a
    // possible root link, plus the link to its own tree.
    let bound = 1 + (num_hosts - 1) * 4;
    for chunk in demand.pairs().chunks(1_000) {
        network.serve_trace(chunk).unwrap();
        assert!(network.max_degree() <= bound);
        assert!(network.mean_degree() <= f64::from(bound));
        assert!(network.mean_degree() >= 1.0);
    }
}

#[test]
fn static_opt_composition_requires_and_uses_the_trace() {
    let num_hosts = 16;
    let mut rng = StdRng::seed_from_u64(21);
    let demand = traffic::hotspot(num_hosts, 10_000, 2, 0.95, &mut rng);
    assert!(matches!(
        SelfAdjustingNetwork::new(num_hosts, AlgorithmKind::StaticOpt, 0),
        Err(NetworkError::TraceRequired { .. })
    ));
    let mut opt =
        SelfAdjustingNetwork::with_trace(num_hosts, AlgorithmKind::StaticOpt, 0, demand.pairs())
            .unwrap();
    let mut oblivious =
        SelfAdjustingNetwork::new(num_hosts, AlgorithmKind::StaticOblivious, 0).unwrap();
    let opt_cost = opt.serve_trace(demand.pairs()).unwrap().mean_total();
    let oblivious_cost = oblivious.serve_trace(demand.pairs()).unwrap().mean_total();
    assert!(opt_cost <= oblivious_cost);
}

#[test]
fn requests_between_all_pairs_are_servable() {
    let num_hosts = 10;
    let mut network = SelfAdjustingNetwork::new(num_hosts, AlgorithmKind::MaxPush, 0).unwrap();
    for source in 0..num_hosts {
        for destination in 0..num_hosts {
            let result = network.serve(Host::new(source), Host::new(destination));
            if source == destination {
                assert!(matches!(result, Err(NetworkError::SelfLoop { .. })));
            } else {
                let cost = result.unwrap();
                assert!(cost.access >= 1);
            }
        }
    }
    assert_eq!(
        network.total_cost().requests(),
        u64::from(num_hosts) * u64::from(num_hosts - 1)
    );
}
