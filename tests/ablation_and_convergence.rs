//! Integration tests for the extension studies: the rotor-mechanism ablation,
//! convergence tracking, and the entropy bounds, all through the `satn`
//! facade.

use rand::rngs::StdRng;
use rand::SeedableRng;
use satn::analysis::{
    entropy, entropy_static_lower_bound, static_optimal_expected_cost, track_convergence,
};
use satn::core::ablation::{AblationKind, LazyRotorPush, ScrambledRotorPush};
use satn::tree::placement;
use satn::workloads::{nonstationary, synthetic};
use satn::{
    CompleteTree, ElementId, Occupancy, RandomPush, RotorPush, SelfAdjustingTree, StaticOblivious,
    StaticOpt,
};

fn identity(levels: u32) -> Occupancy {
    Occupancy::identity(CompleteTree::with_levels(levels).unwrap())
}

#[test]
fn lazy_rotor_interpolates_between_rotor_and_frozen() {
    let mut rng = StdRng::seed_from_u64(1);
    let workload = synthetic::zipf(1023, 40_000, 1.9, &mut rng);

    let mut rotor = RotorPush::new(identity(10));
    let mut lazy1 = LazyRotorPush::new(identity(10), 1);
    let rotor_cost = rotor.serve_sequence(workload.requests()).unwrap();
    let lazy_cost = lazy1.serve_sequence(workload.requests()).unwrap();
    assert_eq!(rotor_cost, lazy_cost);
    assert_eq!(rotor.occupancy(), lazy1.occupancy());
}

#[test]
fn scrambled_rotor_tracks_random_push_on_average() {
    // The scrambled rotor chooses a uniform node on the request's level, which
    // is exactly Random-Push's rule; over a long skewed sequence their mean
    // costs should be close (they are different samples of the same process).
    let mut rng = StdRng::seed_from_u64(5);
    let workload = synthetic::zipf(511, 60_000, 1.6, &mut rng);
    let mut scrambled = ScrambledRotorPush::with_seed(identity(9), 10);
    let mut random = RandomPush::with_seed(identity(9), 20);
    let scrambled_mean = scrambled
        .serve_sequence(workload.requests())
        .unwrap()
        .mean_total();
    let random_mean = random
        .serve_sequence(workload.requests())
        .unwrap()
        .mean_total();
    let relative_gap = (scrambled_mean - random_mean).abs() / random_mean;
    assert!(
        relative_gap < 0.05,
        "scrambled {scrambled_mean} vs random {random_mean}"
    );
}

#[test]
fn every_ablation_variant_is_competitive_on_high_temporal_locality() {
    // With p = 0.95 the same element is requested again most of the time, and
    // every push variant keeps the repeated element at the root, so all
    // variants must end up well below the oblivious baseline.
    let mut rng = StdRng::seed_from_u64(8);
    let workload = synthetic::temporal(1023, 40_000, 0.95, &mut rng);
    let mut oblivious = StaticOblivious::new(identity(10));
    let oblivious_cost = oblivious
        .serve_sequence(workload.requests())
        .unwrap()
        .mean_total();
    for variant in AblationKind::SWEEP {
        let mut algorithm = variant.instantiate(identity(10), 3);
        let cost = algorithm
            .serve_sequence(workload.requests())
            .unwrap()
            .mean_total();
        assert!(
            cost < oblivious_cost,
            "{}: {cost} vs oblivious {oblivious_cost}",
            variant.label()
        );
    }
}

#[test]
fn rotor_push_converges_faster_than_it_forgets_on_a_shifting_workload() {
    let mut rng = StdRng::seed_from_u64(4);
    let workload = nonstationary::shifting_hotspot(2047, 60_000, 3, 2.0, &mut rng);
    let mut rotor = RotorPush::new(identity(11));
    let points = track_convergence(&mut rotor, workload.requests(), 12).unwrap();
    assert_eq!(points.last().unwrap().requests_served, 60_000);
    // The final window must be much cheaper than the cold start: the tree
    // re-converges after every phase shift.
    let first = points.first().unwrap().window_mean_cost;
    let last = points.last().unwrap().window_mean_cost;
    assert!(last < first, "first {first} vs last {last}");
}

#[test]
fn entropy_bounds_sandwich_static_opt_on_generated_workloads() {
    let tree = CompleteTree::with_levels(10).unwrap();
    for a in [1.1f64, 1.6, 2.2] {
        let mut rng = StdRng::seed_from_u64(a.to_bits());
        let workload = synthetic::zipf(tree.num_nodes(), 30_000, a, &mut rng);
        let weights = workload.weights();
        let lower = entropy_static_lower_bound(&weights, tree.num_levels());
        let optimal = static_optimal_expected_cost(&weights);
        assert!(optimal + 1e-9 >= lower);
        assert!(optimal <= entropy(&weights) + 2.0 + 1e-9);

        // The measured Static-Opt access cost equals the analytic optimum.
        let mut opt = StaticOpt::from_sequence(tree, workload.requests()).unwrap();
        let measured = opt
            .serve_sequence(workload.requests())
            .unwrap()
            .mean_access();
        assert!((measured - optimal).abs() < 1e-6, "{measured} vs {optimal}");
    }
}

#[test]
fn bursty_workloads_reward_self_adjustment_over_random_placement() {
    let mut rng = StdRng::seed_from_u64(17);
    let workload = nonstationary::markov_bursty(1023, 50_000, 6, 0.05, 0.995, &mut rng);
    let mut placement_rng = StdRng::seed_from_u64(3);
    let initial =
        placement::random_occupancy(CompleteTree::with_levels(10).unwrap(), &mut placement_rng);
    let mut rotor = RotorPush::new(initial.clone());
    let mut oblivious = StaticOblivious::new(initial);
    let rotor_cost = rotor
        .serve_sequence(workload.requests())
        .unwrap()
        .mean_total();
    let oblivious_cost = oblivious
        .serve_sequence(workload.requests())
        .unwrap()
        .mean_total();
    assert!(rotor_cost < oblivious_cost);
}

#[test]
fn convergence_points_report_displacements_for_all_algorithms() {
    let requests: Vec<ElementId> = (0..5_000u32).map(|i| ElementId::new(i % 127)).collect();
    let mut rotor = RotorPush::new(identity(7));
    let points = track_convergence(&mut rotor, &requests, 5).unwrap();
    for point in &points {
        assert!(point.mru_displacement >= 0.0);
        assert!(point.frequency_displacement >= 0.0);
        assert!(point.window_mean_cost >= 1.0);
    }
}
