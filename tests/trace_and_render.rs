//! Trace persistence and rendering: workloads survive a save/load roundtrip
//! byte-for-byte, replaying a loaded trace reproduces the exact costs, and the
//! ASCII renderings reflect the tree state.

use rand::rngs::StdRng;
use rand::SeedableRng;
use satn::tree::render::{render_levels, render_tree};
use satn::workloads::{load_trace, nonstationary, save_trace, synthetic};
use satn::{CompleteTree, ElementId, Occupancy, RotorPush, SelfAdjustingTree};

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("satn-integration-traces");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn replaying_a_saved_trace_reproduces_the_costs_exactly() {
    let mut rng = StdRng::seed_from_u64(31);
    let workload = nonstationary::markov_bursty(511, 20_000, 5, 0.1, 0.98, &mut rng);
    let path = temp_path("bursty.trace");
    save_trace(&workload, &path).unwrap();
    let reloaded = load_trace(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(reloaded.requests(), workload.requests());
    assert_eq!(reloaded.num_elements(), workload.num_elements());
    assert!((reloaded.empirical_entropy() - workload.empirical_entropy()).abs() < 1e-12);

    let tree = CompleteTree::with_levels(9).unwrap();
    let mut original = RotorPush::new(Occupancy::identity(tree));
    let mut replayed = RotorPush::new(Occupancy::identity(tree));
    let original_costs = original.serve_sequence(workload.requests()).unwrap();
    let replayed_costs = replayed.serve_sequence(reloaded.requests()).unwrap();
    assert_eq!(original_costs, replayed_costs);
    assert_eq!(original.occupancy(), replayed.occupancy());
}

#[test]
fn traces_of_every_generator_roundtrip() {
    let mut rng = StdRng::seed_from_u64(4);
    let nodes = 255;
    let workloads = [
        synthetic::uniform(nodes, 1_000, &mut rng),
        synthetic::temporal(nodes, 1_000, 0.8, &mut rng),
        synthetic::zipf(nodes, 1_000, 1.7, &mut rng),
        synthetic::combined(nodes, 1_000, 1.7, 0.5, &mut rng),
        synthetic::round_robin_path(nodes, nodes / 2, 100),
        nonstationary::shifting_hotspot(nodes, 1_000, 2, 1.8, &mut rng),
    ];
    for (index, workload) in workloads.iter().enumerate() {
        let path = temp_path(&format!("roundtrip-{index}.trace"));
        save_trace(workload, &path).unwrap();
        let reloaded = load_trace(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            reloaded.requests(),
            workload.requests(),
            "{}",
            workload.name()
        );
        assert_eq!(reloaded.num_elements(), workload.num_elements());
    }
}

#[test]
fn renderings_track_a_push_down_step_by_step() {
    let tree = CompleteTree::with_levels(4).unwrap();
    let mut algorithm = RotorPush::new(Occupancy::identity(tree));
    let before = render_levels(algorithm.occupancy());
    assert!(before.starts_with("level 0 | e0"));

    // Figure 1: serve the element at node 5.
    algorithm.serve(ElementId::new(5)).unwrap();
    let after = render_levels(algorithm.occupancy());
    assert!(after.starts_with("level 0 | e5"));
    assert_ne!(before, after);

    let highlighted = render_tree(algorithm.occupancy(), Some(ElementId::new(5)));
    let first_line = highlighted.lines().next().unwrap();
    assert!(first_line.contains("e5"));
    assert!(first_line.contains('*'));
    // One line per node, no node lost.
    assert_eq!(highlighted.lines().count(), 15);
}

#[test]
fn renderings_cover_every_element_exactly_once() {
    let tree = CompleteTree::with_levels(5).unwrap();
    let mut rng = StdRng::seed_from_u64(12);
    let occupancy = satn::tree::placement::random_occupancy(tree, &mut rng);
    let rendered = render_levels(&occupancy);
    for element in 0..31u32 {
        let needle = format!("e{element}");
        let count = rendered
            .split_whitespace()
            .filter(|token| **token == *needle)
            .count();
        assert_eq!(count, 1, "element {element} should appear exactly once");
    }
}
